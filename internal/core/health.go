package core

// This file implements failure-aware membership: each runtime can probe
// its peers' object managers periodically, grading them Alive → Suspect →
// Down on consecutive failures and recovering them after
// peerRecoverAfter consecutive successes (a one-off lucky probe against
// a flapping peer must not re-admit it — and, since down transitions
// promote virtual-object replicas, must not be allowed to trigger a
// spurious promote/demote cycle). Down peers are excluded from placement
// load vectors and failover resolution, so a dead node stops attracting
// traffic instead of costing every placement a timeout. Status
// transitions across the Down boundary invalidate the consistent-hash
// ring and fire the virtual-object failover hooks (see virtual.go).
// Rebalance (periodic or explicit) migrates objects off this node when
// it is loaded above the cluster mean, using the configured
// PlacementPolicy to choose targets among the live peers.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/remoting"
	"repro/internal/wire"
)

// PeerStatus grades a peer's observed liveness.
type PeerStatus int

const (
	// PeerAlive: the peer answered its most recent probe (or was never
	// probed — peers are presumed alive until proven otherwise).
	PeerAlive PeerStatus = iota
	// PeerSuspect: at least one probe in a row failed.
	PeerSuspect
	// PeerDown: peerDownAfter probes in a row failed; the peer is excluded
	// from placement and resolution until it answers again.
	PeerDown
)

// String names the status.
func (s PeerStatus) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDown:
		return "down"
	}
	return fmt.Sprintf("PeerStatus(%d)", int(s))
}

const (
	// peerSuspectAfter / peerDownAfter are the consecutive-failure
	// thresholds of the probe loop.
	peerSuspectAfter = 1
	peerDownAfter    = 3
	// peerRecoverAfter is the recovery hysteresis: a suspect or down peer
	// must answer this many probes in a row before it is graded alive
	// again.
	peerRecoverAfter = 2
	// healthProbeTimeout bounds one liveness probe.
	healthProbeTimeout = 200 * time.Millisecond
)

// peerHealth is one peer's probe record.
type peerHealth struct {
	status PeerStatus
	fails  int
	oks    int // consecutive successes while not alive
	// overload is the peer's admission-control grade from its most
	// recent successful probe (load or health); see overload.go.
	overload OverloadGrade
}

// PeerStatusOf reports the current liveness grade of a peer. Unknown nodes
// (and this node itself) are alive.
func (rt *Runtime) PeerStatusOf(node int) PeerStatus {
	rt.healthMu.Lock()
	defer rt.healthMu.Unlock()
	if h, ok := rt.health[node]; ok {
		return h.status
	}
	return PeerAlive
}

// PeerStatuses snapshots the liveness grade of every known peer.
func (rt *Runtime) PeerStatuses() map[int]PeerStatus {
	rt.mu.Lock()
	peers := rt.peers
	rt.mu.Unlock()
	out := make(map[int]PeerStatus, len(peers))
	for _, p := range peers {
		out[p.node] = rt.PeerStatusOf(p.node)
	}
	return out
}

// peerDown reports whether a peer is currently graded Down.
func (rt *Runtime) peerDown(node int) bool { return rt.PeerStatusOf(node) == PeerDown }

// noteProbe folds one probe outcome into a peer's record and fires the
// membership transition hooks (outside healthMu — a hook may probe the
// health map itself).
func (rt *Runtime) noteProbe(node int, ok bool) {
	rt.healthMu.Lock()
	h := rt.health[node]
	if h == nil {
		h = &peerHealth{}
		rt.health[node] = h
	}
	was := h.status
	if ok {
		h.fails = 0
		h.oks++
		if h.status == PeerAlive || h.oks >= peerRecoverAfter {
			h.status, h.oks = PeerAlive, 0
		}
	} else {
		h.oks = 0
		h.fails++
		switch {
		case h.fails >= peerDownAfter:
			h.status = PeerDown
		case h.fails >= peerSuspectAfter && h.status != PeerDown:
			// Failures never downgrade Down to Suspect: a peer that earned
			// Down stays there until the recovery streak clears it, even
			// when an interleaved success reset the failure counter.
			h.status = PeerSuspect
		}
	}
	now := h.status
	rt.healthMu.Unlock()
	if was != now && (was == PeerDown || now == PeerDown) {
		// The live member set changed: every node computes placement from
		// it, so the cached ring is stale.
		rt.ringEpoch.Add(1)
		if now == PeerDown {
			go rt.onPeerDown(node)
		} else {
			go rt.onPeerUp(node)
		}
	}
}

// forEachPeer runs fn concurrently for every remote peer known to this
// runtime — optionally skipping peers graded down — each invocation
// bounded by its own timeout derived from ctx, and waits for all to
// finish. It is the shared scaffolding of every probe fan-out (load
// probes, directory resolution, liveness pings): one slow or dead peer
// costs one timeout in parallel with the rest, never a serial stall.
func (rt *Runtime) forEachPeer(ctx context.Context, timeout time.Duration, skipDown bool, fn func(ctx context.Context, p peer)) {
	rt.mu.Lock()
	peers := rt.peers
	rt.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range peers {
		if p.node == rt.cfg.NodeID || p.om == nil || (skipDown && rt.peerDown(p.node)) {
			continue
		}
		wg.Add(1)
		go func(p peer) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			fn(pctx, p)
		}(p)
	}
	wg.Wait()
}

// healthLoop drives periodic peer probes until the runtime closes.
func (rt *Runtime) healthLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.ProbePeers()
		}
	}
}

// ProbePeers probes every peer's object manager once, concurrently with a
// short per-probe deadline, and updates the membership grades. Down peers
// are deliberately probed too — that is how recovery is detected. The
// probe asks for LoadInfo rather than a bare ping, so the same round trip
// that proves liveness also refreshes the peer's overload grade (a node
// rejecting calls is routed around like a slow one, without waiting for
// the next placement load probe). It is called by the periodic health
// loop (Config.HealthProbe) and may be called explicitly by operators or
// tests.
func (rt *Runtime) ProbePeers() {
	rt.forEachPeer(context.Background(), healthProbeTimeout, false, func(ctx context.Context, p peer) {
		// Health probes are the failure detector's clock: retry backoff
		// would stretch the probe window and mask exactly the failures
		// this exists to notice, so probes always get a single attempt.
		res, err := p.om.InvokeCtx(remoting.WithoutRetry(ctx), "LoadInfo")
		rt.noteProbe(p.node, err == nil)
		if err != nil {
			return
		}
		var li LoadInfo
		if wire.AssignTo(&li, res) == nil {
			rt.noteOverload(p.node, OverloadGrade(li.Overload))
		}
	})
}

// Rebalance migrates parallel objects off this node until its hosted load
// is no higher than the cluster mean, choosing each target with the
// configured PlacementPolicy over the live load vector (down and
// unreachable peers excluded). It returns the number of objects migrated.
// Objects whose migration fails are skipped, not retried.
func (rt *Runtime) Rebalance(ctx context.Context) (int, error) {
	loads := rt.probeLoads()
	if len(loads) <= 1 {
		return 0, nil
	}
	total := 0
	for _, l := range loads {
		total += l.Load
	}
	mean := (total + len(loads) - 1) / len(loads)
	excess := rt.Load() - mean
	if excess <= 0 {
		return 0, nil
	}
	return rt.migrateExcess(ctx, loads, excess, mean)
}

// Drain migrates every actor-hosted object off this node — the graceful
// step before taking a node out of service. Targets are chosen like
// Rebalance's.
func (rt *Runtime) Drain(ctx context.Context) (int, error) {
	loads := rt.probeLoads()
	if len(loads) <= 1 {
		return 0, fmt.Errorf("core: drain node %d: no live peers to migrate to", rt.cfg.NodeID)
	}
	return rt.migrateExcess(ctx, loads, rt.Load(), int(^uint(0)>>1))
}

// migrateExcess moves up to excess hosted objects to policy-picked peers,
// updating its working copy of the load vector as it goes so consecutive
// picks spread instead of dogpiling one target. Only peers below the
// loadCap are offered to the policy: a rebalance must not ship objects to
// a peer already at the mean (a load-blind policy like RoundRobin would
// otherwise just relocate the overload, and two such nodes would churn
// objects back and forth forever). Drain passes an unbounded cap.
func (rt *Runtime) migrateExcess(ctx context.Context, loads []NodeLoad, excess, loadCap int) (int, error) {
	// Work on the peers' entries only: the policy must not pick this node.
	others := make([]NodeLoad, 0, len(loads))
	for _, l := range loads {
		if l.Node != rt.cfg.NodeID {
			others = append(others, l)
		}
	}
	uris := rt.hostedURIs(excess)
	migrated := 0
	var firstErr error
	for _, uri := range uris {
		cands := make([]NodeLoad, 0, len(others))
		for _, l := range others {
			if l.Load < loadCap {
				cands = append(cands, l)
			}
		}
		if len(cands) == 0 {
			break
		}
		target := rt.cfg.Placement.Pick(rt.cfg.NodeID, cands)
		if target == rt.cfg.NodeID || indexOfNode(cands, target) < 0 {
			// A degenerate pick (LocalOnly, or a node outside the live
			// vector): fall back to the least-loaded live peer so drains
			// and rebalances still make progress.
			target = (LeastLoaded{}).Pick(rt.cfg.NodeID, cands)
			if indexOfNode(cands, target) < 0 {
				break
			}
		}
		if err := rt.MigrateCtx(ctx, uri, target); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		others[indexOfNode(others, target)].Load++
		migrated++
	}
	if migrated == 0 && firstErr != nil {
		return 0, firstErr
	}
	return migrated, nil
}

// indexOfNode finds a node's entry in a load vector.
func indexOfNode(loads []NodeLoad, node int) int {
	for i, l := range loads {
		if l.Node == node {
			return i
		}
	}
	return -1
}

// hostedURIs snapshots up to n URIs of actor-hosted objects.
func (rt *Runtime) hostedURIs(n int) []string {
	rt.actorsMu.Lock()
	defer rt.actorsMu.Unlock()
	uris := make([]string, 0, n)
	for uri := range rt.actors {
		if len(uris) == n {
			break
		}
		uris = append(uris, uri)
	}
	return uris
}

// rebalanceLoop drives periodic rebalances until the runtime closes.
func (rt *Runtime) rebalanceLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			_, _ = rt.Rebalance(ctx)
			cancel()
		}
	}
}
