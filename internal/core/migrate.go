package core

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"repro/internal/errs"
	"repro/internal/remoting"
	"repro/internal/wire"
)

// Migrate moves the parallel object published at uri from this node to
// toNode; see MigrateCtx.
func (rt *Runtime) Migrate(uri string, toNode int) error {
	return rt.MigrateCtx(context.Background(), uri, toNode)
}

// migrateTimeout caps a migration whose caller set no deadline: the pause
// drain and the state transfer must finish within it or the migration
// fails and the actor resumes. A mailbox that can never drain (a task
// blocked posting into its own paused mailbox) therefore costs a failed
// migration, not a wedged object.
const migrateTimeout = 10 * time.Second

// MigrateCtx live-migrates a parallel object hosted on this node:
//
//  1. the actor mailbox is paused — new calls block, queued calls drain;
//  2. the implementation object's state is snapshotted through the wire
//     codecs (the generated //parc:wire codec when the class has one, the
//     reflective encoder otherwise — either way, exported fields travel);
//  3. the target node's object manager re-creates the object under the
//     same URI at a bumped generation;
//  4. a forwarding tombstone replaces the actor endpoint (atomically, so a
//     racing call observes either the draining actor or the forward) and
//     the blocked callers are released with the *errs.MovedError that
//     re-routes them.
//
// Callers that were blocked observe at most one transparent retry; calls
// that executed before the pause are in the snapshot. Per-object call
// ordering is preserved: nothing executes at the target before the source
// mailbox fully drained.
//
// If uri is not hosted here, a *errs.MovedError is returned when the
// directory knows a forward (the caller can chase it), ErrObjectDestroyed
// otherwise.
func (rt *Runtime) MigrateCtx(ctx context.Context, uri string, toNode int) error {
	if toNode == rt.cfg.NodeID {
		rt.actorsMu.Lock()
		hosted := rt.actors[uri] != nil
		rt.actorsMu.Unlock()
		if hosted {
			return nil
		}
		// Not hosted here (any more): report the forward when the
		// directory knows one, so "migrate it back home" through a stale
		// handle chases to the current host instead of failing.
		if loc, ok := rt.dirLookup(uri); ok && loc.Node != rt.cfg.NodeID {
			return &errs.MovedError{URI: uri, Node: loc.Node, Addr: loc.Addr, Gen: loc.Gen}
		}
		return fmt.Errorf("core: migrate %s: not hosted on node %d: %w", uri, toNode, errs.ErrObjectDestroyed)
	}
	target, ok := rt.peerFor(toNode)
	if !ok || target.om == nil {
		return fmt.Errorf("core: migrate %s: unknown target node %d", uri, toNode)
	}
	rt.actorsMu.Lock()
	a := rt.actors[uri]
	rt.actorsMu.Unlock()
	if a == nil {
		if loc, ok := rt.dirLookup(uri); ok && loc.Node != rt.cfg.NodeID {
			return &errs.MovedError{URI: uri, Node: loc.Node, Addr: loc.Addr, Gen: loc.Gen}
		}
		return fmt.Errorf("core: migrate %s: %w", uri, errs.ErrObjectDestroyed)
	}

	// The drain + transfer are always bounded by migrateTimeout, even
	// when the caller's deadline is looser (a periodic rebalance hands in
	// its whole interval): a mailbox that cannot drain must fail the
	// migration in seconds, not pause its callers until the caller's
	// deadline.
	if dl, ok := ctx.Deadline(); !ok || time.Until(dl) > migrateTimeout {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, migrateTimeout)
		defer cancel()
	}
	if err := a.pause(ctx); err != nil {
		return fmt.Errorf("core: migrate %s: drain mailbox: %w", uri, err)
	}
	moved := false
	defer func() {
		if !moved {
			a.resume()
		}
	}()

	registerStateType(a.w.obj)
	state, err := wire.BinFmt{}.Marshal(a.w.obj)
	if err != nil {
		return fmt.Errorf("core: migrate %s: snapshot %T: %w", uri, a.w.obj, err)
	}
	gen := uint64(1)
	if loc, ok := rt.dirLookup(uri); ok {
		gen = loc.Gen
	}
	newGen := gen + 1
	res, err := target.om.InvokeCtx(ctx, "AcceptObject", a.w.class, uri, newGen, state)
	if err != nil {
		// The transfer may have landed — or still be in flight — even
		// though its reply did not arrive (lost reply, expired deadline;
		// server dispatch is concurrent, so ordering cannot cancel it).
		// The source copy stays authoritative: resume it immediately (no
		// caller should stall behind the compensation RPCs), burn TWO
		// generations — the aborted one and the one the aborted copy
		// would use if it migrated onward before the abort lands, which
		// is what lets the abort chase that hop without ever touching a
		// later legitimate retry's lineage — then best-effort abort the
		// transfer: AbortAccept destroys a committed copy, poisons
		// newGen so an in-flight transfer cannot commit, and chases the
		// one-hop onward forward. If even the abort cannot reach the
		// target the split remains possible, but only behind a partition
		// that already failed both the transfer and its compensation.
		a.resume()
		moved = true // the deferred resume is no longer needed
		rt.actorsMu.Lock()
		still := rt.actors[uri] == a
		rt.actorsMu.Unlock()
		if still {
			// Unless a racing destroy removed the object during the
			// transfer — re-inserting a self entry would resurrect the
			// destroyed URI in the directory.
			rt.dirUpdate(uri, ObjLoc{Node: rt.cfg.NodeID, Addr: rt.Addr(), Gen: newGen + 1})
		}
		abortTransfer(target, uri, newGen)
		return fmt.Errorf("core: migrate %s to node %d: %w", uri, toNode, err)
	}
	addr, _ := res.(string)
	if addr == "" {
		addr = target.addr
	}

	mv := &errs.MovedError{URI: uri, Node: toNode, Addr: addr, Gen: newGen}
	// The commit — remove the actor, swap in the tombstone, move the load
	// and directory entry — happens in one actorsMu critical section:
	// destroyLocal also starts by taking actorsMu, so a racing destroy
	// observes either the live actor (and wins below) or the fully
	// committed tombstone state, never a half-committed mix that would
	// double-decrement the load or resurrect a destroyed object. The
	// tombstone's lease garbage-collects idle forwards (hot ones renew on
	// every hit); when it lapses the forward directory entry goes too,
	// unless the object has since migrated back here.
	rt.actorsMu.Lock()
	if rt.actors[uri] != a {
		// A destroy raced the transfer and already unpublished the
		// object here; undo the copy the target just created instead of
		// committing a tombstone that would resurrect it.
		rt.actorsMu.Unlock()
		abortTransfer(target, uri, newGen)
		return fmt.Errorf("core: migrate %s: %w", uri, errs.ErrObjectDestroyed)
	}
	delete(rt.actors, uri)
	rt.server.Republish(uri, &tombstone{mv: *mv}, func() { rt.dirDropForward(uri) })
	rt.load.Add(-1)
	rt.dirUpdate(uri, ObjLoc{Node: toNode, Addr: addr, Gen: newGen})
	rt.actorsMu.Unlock()
	a.markMoved(mv)
	moved = true
	rt.stats.objectsMigratedOut.Add(1)
	return nil
}

// acceptObject is the receiving half of a migration: re-create class under
// uri at generation gen, restoring the snapshotted state. It is idempotent
// against the channel's at-most-once caveat — a duplicate or stale
// transfer (this node's directory already knows the object at gen or
// newer, whether still hosted here or forwarded onward) reports success
// without re-creating, so a late duplicate can never resurrect old state
// over a live copy or a forwarding tombstone.
func (rt *Runtime) acceptObject(class, uri string, gen uint64, state []byte) (string, error) {
	if rt.transferAborted(uri, gen) {
		return "", fmt.Errorf("core: accept %s: transfer at generation %d was aborted", uri, gen)
	}
	rt.actorsMu.Lock()
	_, exists := rt.actors[uri]
	rt.actorsMu.Unlock()
	if loc, ok := rt.dirLookup(uri); ok && loc.Gen >= gen {
		if exists || loc.Node != rt.cfg.NodeID {
			return rt.Addr(), nil
		}
	}
	if exists {
		return "", fmt.Errorf("core: accept %s: already hosted on node %d", uri, rt.cfg.NodeID)
	}
	factory, err := rt.factoryFor(class)
	if err != nil {
		return "", err
	}
	obj := factory()
	registerStateType(obj)
	if len(state) > 0 {
		snap, err := wire.BinFmt{}.Unmarshal(state)
		if err != nil {
			return "", fmt.Errorf("core: accept %s: decode state: %w", uri, err)
		}
		obj, err = adoptState(obj, snap)
		if err != nil {
			return "", fmt.Errorf("core: accept %s: %w", uri, err)
		}
	}
	w := &ioWrapper{rt: rt, class: class, obj: obj, uri: uri}
	w.gen.Store(gen)
	if cfg, ok := rt.virtualConfig(class); ok && isVirtualURI(uri) {
		// A migrated virtual object keeps replicating from its new host.
		c := cfg
		w.virt = &c
	}
	a := newActor(w)
	rt.actorsMu.Lock()
	if rt.transferAborted(uri, gen) {
		// The abort arrived while the state was being rebuilt.
		rt.actorsMu.Unlock()
		a.stop()
		return "", fmt.Errorf("core: accept %s: transfer at generation %d was aborted", uri, gen)
	}
	if _, raced := rt.actors[uri]; raced {
		rt.actorsMu.Unlock()
		a.stop()
		return rt.Addr(), nil
	}
	rt.actors[uri] = a
	rt.server.Marshal(uri, &actorEndpoint{a: a})
	rt.load.Add(1)
	rt.dirUpdate(uri, ObjLoc{Node: rt.cfg.NodeID, Addr: rt.Addr(), Gen: gen})
	rt.actorsMu.Unlock()
	rt.clearAbort(uri, gen)
	rt.stats.objectsMigratedIn.Add(1)
	return rt.Addr(), nil
}

// abortTransferTimeout is the per-attempt deadline of a migration
// compensation. It is deliberately generous relative to probe timeouts: a
// target that was merely slow (not partitioned) when the transfer's reply
// was lost must still receive the abort, or the in-flight transfer could
// commit behind the source's back.
const abortTransferTimeout = 3 * time.Second

// abortTransfer fires the best-effort compensation of a failed transfer
// at the target: poison the generation and destroy any copy that already
// committed (see Runtime.abortAccept). Two attempts, each with its own
// deadline; if both fail the target was unreachable for seconds on end —
// the split-brain residue is then genuinely confined to partitions. It
// runs after the source resumed (the source stays authoritative), so no
// caller stalls behind it.
func abortTransfer(target peer, uri string, gen uint64) {
	for attempt := 0; attempt < 2; attempt++ {
		cctx, cancel := context.WithTimeout(context.Background(), abortTransferTimeout)
		_, err := target.om.InvokeCtx(cctx, "AbortAccept", uri, gen)
		cancel()
		if err == nil {
			return
		}
	}
}

// transferAborted reports whether a transfer of uri at gen was aborted.
func (rt *Runtime) transferAborted(uri string, gen uint64) bool {
	rt.abortMu.Lock()
	defer rt.abortMu.Unlock()
	return rt.aborts[uri] >= gen
}

// clearAbort erases an abort marker once a newer-generation transfer
// committed, so markers do not accumulate beyond failed migrations.
func (rt *Runtime) clearAbort(uri string, gen uint64) {
	rt.abortMu.Lock()
	if rt.aborts[uri] < gen {
		delete(rt.aborts, uri)
	}
	rt.abortMu.Unlock()
}

// abortAccept is the compensation half of a failed migration: it poisons
// generation gen for uri — an AcceptObject at or below it can no longer
// commit, even one still in flight (server dispatch is concurrent, so the
// abort may be executed before the transfer it undoes) — and destroys a
// copy that already committed at or below gen. The source burns the
// aborted generation, so its next migration attempt uses a fresh one the
// marker does not cover.
func (rt *Runtime) abortAccept(uri string, gen uint64) {
	rt.abortMu.Lock()
	if rt.aborts[uri] < gen {
		rt.aborts[uri] = gen
	}
	rt.abortMu.Unlock()
	// The hosted/directory inspection happens under actorsMu, the lock
	// acceptObject's commit holds across its own marker re-check and
	// registration: the abort therefore observes the accept either fully
	// committed (and destroys the copy) or not yet committed (and the
	// accept's re-check sees the marker and refuses) — never a half
	// state that slips between both guards.
	rt.actorsMu.Lock()
	hosted := rt.actors[uri] != nil
	loc, ok := rt.dirLookup(uri)
	rt.actorsMu.Unlock()
	if hosted && ok && loc.Node == rt.cfg.NodeID && loc.Gen <= gen {
		rt.destroyLocal(uri)
		return
	}
	if ok && loc.Node != rt.cfg.NodeID && loc.Gen == gen+1 {
		// The aborted copy committed here and already migrated onward
		// before the abort arrived: its hop is at exactly gen+1. Chase
		// it. The source burns two generations on a failed transfer, so
		// a later legitimate retry's lineage starts at gen+2 or above
		// and can never match this rule — the chase only ever reaches
		// descendants of the transfer being aborted.
		om := remoting.NewObjRef(rt.cfg.Channel, loc.Addr, omURI)
		cctx, cancel := context.WithTimeout(context.Background(), abortTransferTimeout)
		defer cancel()
		_, _ = om.InvokeCtx(cctx, "AbortAccept", uri, loc.Gen) //nolint:errcheck // best effort
	}
}

// adoptState replaces or fills the factory-made obj with the decoded
// snapshot. The snapshot decodes to the registered struct (pointer or
// value); it must match the factory's concrete type.
func adoptState(obj, snap any) (any, error) {
	ov := reflect.ValueOf(obj)
	sv := reflect.ValueOf(snap)
	switch {
	case sv.Type() == ov.Type():
		return snap, nil
	case ov.Kind() == reflect.Pointer && !ov.IsNil() && sv.Type() == ov.Type().Elem():
		ov.Elem().Set(sv)
		return obj, nil
	}
	return nil, fmt.Errorf("core: state snapshot is %T, factory makes %T", snap, obj)
}

// peerFor returns the peer record of a node id.
func (rt *Runtime) peerFor(node int) (peer, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, p := range rt.peers {
		if p.node == node {
			return p, true
		}
	}
	return peer{}, false
}
