package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/errs"
)

// gateObj blocks its mailbox until released, letting tests fill a bounded
// queue deterministically.
type gateObj struct {
	entered chan struct{} // signalled once per Block call that starts running
	release chan struct{} // closing it releases every blocked call
}

func newGateObj() *gateObj {
	return &gateObj{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

// Block parks the actor goroutine until the gate is released.
func (g *gateObj) Block() int {
	g.entered <- struct{}{}
	<-g.release
	return 1
}

// Quick returns immediately — used to probe admission while Block holds
// the actor.
func (g *gateObj) Quick() int { return 2 }

// startGated boots nodes with a bounded mailbox and one registered gate
// class backed by the returned gateObj.
func startGated(t *testing.T, nodes, bound int, shed ShedPolicy, mutate func(i int, cfg *Config)) ([]*Runtime, *gateObj) {
	t.Helper()
	g := newGateObj()
	rts := startNodes(t, nodes, func(i int, cfg *Config) {
		cfg.MailboxBound = bound
		cfg.Shed = shed
		if mutate != nil {
			mutate(i, cfg)
		}
	})
	for _, rt := range rts {
		rt.RegisterClass("gate", func() any { return g })
	}
	t.Cleanup(func() {
		// Unpark any call still holding an actor so Close is not stuck
		// behind it.
		select {
		case <-g.release:
		default:
			close(g.release)
		}
	})
	return rts, g
}

// occupy starts one Block call on p and waits until it is running, so the
// actor goroutine is held and every subsequent call queues.
func occupy(t *testing.T, g *gateObj, p *Proxy) {
	t.Helper()
	go p.InvokeCtx(context.Background(), "Block")
	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("Block call never started running")
	}
}

// fillQueue enqueues n Block calls and waits until the runtime sees them
// queued (the calls themselves stay parked behind the occupied actor).
func fillQueue(t *testing.T, rt *Runtime, p *Proxy, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		go p.InvokeCtx(context.Background(), "Block")
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.queuedTasks.Load() < int64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d of %d queued", rt.queuedTasks.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMailboxShedNewestUnderBurst(t *testing.T) {
	const bound = 4
	rts, g := startGated(t, 1, bound, ShedNewest, nil)
	p, err := rts[0].NewParallelObject("gate")
	if err != nil {
		t.Fatal(err)
	}
	occupy(t, g, p)
	fillQueue(t, rts[0], p, bound)

	// A burst of arrivals against the full mailbox: every one must
	// fast-fail with ErrOverloaded — concurrently, under the race
	// detector — without disturbing the admitted calls.
	const burst = 16
	errsCh := make(chan error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := p.InvokeCtx(context.Background(), "Quick")
			errsCh <- err
		}()
	}
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		if !errors.Is(err, errs.ErrOverloaded) {
			t.Fatalf("burst call: err = %v, want ErrOverloaded", err)
		}
	}

	st := rts[0].Stats()
	if st.MailboxSheds < burst {
		t.Errorf("MailboxSheds = %d, want >= %d", st.MailboxSheds, burst)
	}
	if st.OverloadGrade != OverloadShedding {
		t.Errorf("OverloadGrade = %v, want OverloadShedding after a shed", st.OverloadGrade)
	}

	// Releasing the gate drains the admitted calls; once the queue has
	// room again, admission resumes (retry until the drain catches up).
	close(g.release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := p.InvokeCtx(context.Background(), "Quick")
		if err == nil {
			if got != 2 {
				t.Fatalf("post-drain call = %v, want 2", got)
			}
			break
		}
		if !errors.Is(err, errs.ErrOverloaded) || time.Now().After(deadline) {
			t.Fatalf("post-drain call: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMailboxShedOldestEvicts(t *testing.T) {
	const bound = 2
	rts, g := startGated(t, 1, bound, ShedOldest, nil)
	p, err := rts[0].NewParallelObject("gate")
	if err != nil {
		t.Fatal(err)
	}
	occupy(t, g, p)

	// Two queued calls fill the mailbox; their results arrive on oldErrs.
	oldErrs := make(chan error, bound)
	for i := 0; i < bound; i++ {
		go func() {
			_, err := p.InvokeCtx(context.Background(), "Quick")
			oldErrs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for rts[0].queuedTasks.Load() < bound {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// The next arrival evicts the oldest queued call and is itself
	// admitted: the evicted caller gets ErrOverloaded, the new call
	// completes once the gate opens.
	newDone := make(chan error, 1)
	go func() {
		_, err := p.InvokeCtx(context.Background(), "Quick")
		newDone <- err
	}()
	select {
	case err := <-oldErrs:
		if !errors.Is(err, errs.ErrOverloaded) {
			t.Fatalf("evicted call: err = %v, want ErrOverloaded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no queued call was evicted")
	}
	if got := rts[0].Stats().MailboxSheds; got < 1 {
		t.Errorf("MailboxSheds = %d, want >= 1", got)
	}

	close(g.release)
	if err := <-newDone; err != nil {
		t.Fatalf("admitted arrival failed: %v", err)
	}
	if err := <-oldErrs; err != nil {
		t.Fatalf("surviving queued call failed: %v", err)
	}
}

func TestDeadlineDropAtDequeue(t *testing.T) {
	rts, g := startGated(t, 1, 8, ShedNewest, nil)
	p, err := rts[0].NewParallelObject("gate")
	if err != nil {
		t.Fatal(err)
	}
	occupy(t, g, p)

	// Queue a call whose deadline expires while it waits behind Block:
	// the actor must skip it at dequeue (never invoking Quick) and count
	// a deadline drop.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := p.InvokeCtx(ctx, "Quick")
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("queued call: err = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued call never expired")
	}

	close(g.release)
	deadline := time.Now().Add(5 * time.Second)
	for rts[0].Stats().DeadlineDrops < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("DeadlineDrops = %d, want >= 1 after dequeue of expired call",
				rts[0].Stats().DeadlineDrops)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOverloadGradeTransitions(t *testing.T) {
	rts, g := startGated(t, 1, 2, ShedNewest, nil)
	rt := rts[0]
	if got := rt.OverloadGrade(); got != OverloadNone {
		t.Fatalf("idle grade = %v, want OverloadNone", got)
	}
	p, err := rt.NewParallelObject("gate")
	if err != nil {
		t.Fatal(err)
	}
	occupy(t, g, p)
	// One queued call against bound 2 on one hosted actor crosses the
	// half-capacity occupancy threshold.
	fillQueue(t, rt, p, 1)
	if got := rt.OverloadGrade(); got != OverloadBusy {
		t.Errorf("grade with half-full mailboxes = %v, want OverloadBusy", got)
	}
	// A shed escalates to Shedding regardless of current occupancy.
	rt.noteShed()
	if got := rt.OverloadGrade(); got != OverloadShedding {
		t.Errorf("grade after shed = %v, want OverloadShedding", got)
	}
	// Draining clears Busy; Shedding decays only with the window, which
	// the test does not wait out (covered by the grade definition).
	close(g.release)
}

func TestOverloadGradeDisabledWithoutBound(t *testing.T) {
	rts := startNodes(t, 1, nil)
	rts[0].noteShed()
	if got := rts[0].OverloadGrade(); got != OverloadNone {
		t.Errorf("grade with MailboxBound=0 = %v, want OverloadNone always", got)
	}
}

func TestPlacementRoutesAroundHotNodes(t *testing.T) {
	loads := []NodeLoad{
		{Node: 0, Load: 5, Overload: OverloadNone},
		{Node: 1, Load: 0, Overload: OverloadShedding},
		{Node: 2, Load: 3, Overload: OverloadBusy},
	}
	// LeastLoaded ranks by overload grade before raw load: the idle but
	// shedding node 1 must lose to both cool nodes, and Busy node 2 must
	// lose to None node 0 despite its lower load.
	ll := &LeastLoaded{}
	if got := ll.Pick(0, loads); got != 0 {
		t.Errorf("LeastLoaded.Pick = %d, want 0 (cool beats hot regardless of load)", got)
	}
	// RoundRobin skips shedding nodes entirely while alternatives exist.
	rr := &RoundRobin{}
	for i := 0; i < 6; i++ {
		if got := rr.Pick(0, loads); got == 1 {
			t.Fatalf("RoundRobin picked shedding node 1 on iteration %d", i)
		}
	}
	// With every node shedding, placement falls back to the full vector
	// rather than refusing to place.
	allHot := []NodeLoad{
		{Node: 0, Load: 1, Overload: OverloadShedding},
		{Node: 1, Load: 2, Overload: OverloadShedding},
	}
	if got := ll.Pick(0, allHot); got != 0 && got != 1 {
		t.Errorf("LeastLoaded.Pick(all hot) = %d, want a member", got)
	}
	picked := map[int]bool{}
	for i := 0; i < 8; i++ {
		picked[rr.Pick(0, allHot)] = true
	}
	if !picked[0] || !picked[1] {
		t.Errorf("RoundRobin(all hot) picks = %v, want both members used", picked)
	}
}

func TestLiveMembersExcludeSheddingPeers(t *testing.T) {
	rts := startNodes(t, 3, nil)
	rt := rts[0]
	rt.noteOverload(1, OverloadShedding)
	members := rt.liveMembers()
	for _, m := range members {
		if m == 1 {
			t.Fatalf("liveMembers = %v includes shedding peer 1", members)
		}
	}
	if len(members) != 2 {
		t.Fatalf("liveMembers = %v, want self and peer 2", members)
	}
	// Recovery re-admits the peer.
	rt.noteOverload(1, OverloadNone)
	if members = rt.liveMembers(); len(members) != 3 {
		t.Errorf("liveMembers after recovery = %v, want all 3", members)
	}
	// If every peer is hot, the ring must not collapse onto self.
	rt.noteOverload(1, OverloadShedding)
	rt.noteOverload(2, OverloadShedding)
	if members = rt.liveMembers(); len(members) != 3 {
		t.Errorf("liveMembers with all peers hot = %v, want shedding peers re-admitted", members)
	}
}

// TestOverloadedSurvivesWire drives ErrOverloaded across a real remote
// call in both wire formats: the default compact bound-reply envelope and
// the string envelope (DisableBinding). errors.Is must hold client-side
// either way.
func TestOverloadedSurvivesWire(t *testing.T) {
	for _, disableBinding := range []bool{false, true} {
		name := "compact"
		if disableBinding {
			name = "string"
		}
		t.Run(name, func(t *testing.T) {
			const bound = 1
			rts, g := startGated(t, 2, bound, ShedNewest, func(i int, cfg *Config) {
				cfg.Placement = &forceNode{node: 1}
				cfg.Channel.DisableBinding = disableBinding
			})
			p, err := rts[0].NewParallelObject("gate")
			if err != nil {
				t.Fatal(err)
			}
			if p.IsLocal() {
				t.Fatal("object placed locally; wire path not exercised")
			}
			occupy(t, g, p)
			fillQueue(t, rts[1], p, bound)
			_, err = p.InvokeCtx(context.Background(), "Quick")
			if !errors.Is(err, errs.ErrOverloaded) {
				t.Fatalf("remote call against full mailbox: err = %v, want ErrOverloaded", err)
			}
			if sheds := rts[1].Stats().MailboxSheds; sheds < 1 {
				t.Errorf("hosting node MailboxSheds = %d, want >= 1", sheds)
			}
			if sheds := rts[0].Stats().MailboxSheds; sheds != 0 {
				t.Errorf("calling node MailboxSheds = %d, want 0 (shed happened remotely)", sheds)
			}
		})
	}
}

// TestProbeCarriesOverloadGrade has node 1 shed, then verifies node 0's
// load probe brings back the Shedding grade (the signal placement and
// virtual activation route on).
func TestProbeCarriesOverloadGrade(t *testing.T) {
	rts, g := startGated(t, 2, 1, ShedNewest, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
		cfg.LoadCacheTTL = time.Nanosecond // every probeLoads hits the wire
	})
	p, err := rts[0].NewParallelObject("gate")
	if err != nil {
		t.Fatal(err)
	}
	occupy(t, g, p)
	fillQueue(t, rts[1], p, 1)
	if _, err := p.InvokeCtx(context.Background(), "Quick"); !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("filler call: err = %v, want ErrOverloaded", err)
	}
	// A fresh placement probe from node 0 must observe node 1 shedding.
	rts[0].probeLoads()
	if got := rts[0].peerOverload(1); got != OverloadShedding {
		t.Errorf("probed grade of peer 1 = %v, want OverloadShedding", got)
	}
	close(g.release)
}
