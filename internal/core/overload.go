package core

// This file implements admission control and the per-node overload
// signal. Bounded actor mailboxes (Config.MailboxBound) fast-fail with
// errs.ErrOverloaded instead of queueing without limit — under open-loop
// load an unbounded queue grows until every call times out, so shedding
// the excess is what keeps the latency of accepted calls bounded. The
// shed rate and aggregate mailbox occupancy fold into an OverloadGrade
// that rides the health-probe and load-probe replies, letting placement
// and virtual-object activation route around hot nodes.

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// ShedPolicy selects which call a full bounded mailbox sheds.
type ShedPolicy int

const (
	// ShedNewest (default) rejects the arriving call with ErrOverloaded,
	// preserving the latency of calls already admitted (FIFO drop-tail).
	ShedNewest ShedPolicy = iota
	// ShedOldest evicts the oldest queued call — failing it with
	// ErrOverloaded — and admits the arriving one. Freshest-first serving
	// suits workloads where a stale request's caller has likely already
	// timed out.
	ShedOldest
)

// String names the policy.
func (p ShedPolicy) String() string {
	switch p {
	case ShedNewest:
		return "shed-newest"
	case ShedOldest:
		return "shed-oldest"
	}
	return fmt.Sprintf("ShedPolicy(%d)", int(p))
}

// OverloadGrade is a node's admission-control state, coarse enough to
// gossip on every probe reply and compare across nodes.
type OverloadGrade int

const (
	// OverloadNone: mailboxes have headroom (or admission control is off).
	OverloadNone OverloadGrade = iota
	// OverloadBusy: aggregate mailbox occupancy crossed half the node's
	// capacity; placement should prefer cooler peers.
	OverloadBusy
	// OverloadShedding: the node shed a call within the last
	// overloadShedWindow; placement and virtual-object activation route
	// around it entirely while any alternative exists.
	OverloadShedding
)

// String names the grade.
func (g OverloadGrade) String() string {
	switch g {
	case OverloadNone:
		return "none"
	case OverloadBusy:
		return "busy"
	case OverloadShedding:
		return "shedding"
	}
	return fmt.Sprintf("OverloadGrade(%d)", int(g))
}

// overloadShedWindow is how long a shed keeps the node graded
// OverloadShedding: long enough to survive probe intervals, short enough
// that a recovered node re-attracts traffic within a couple of probes.
const overloadShedWindow = time.Second

// shedRetryAfter is the drain estimate stamped on mailbox-shed replies
// (the envelope's retry-after hint): roughly how long a full mailbox
// takes to make progress, so a retrying caller comes back once the
// backlog has plausibly moved instead of hammering immediately or waiting
// out a full backoff ladder.
const shedRetryAfter = 25 * time.Millisecond

// LoadInfo is the omService's combined load/overload probe reply: the
// placement load vector and the health probe both consume it, so one
// probe carries liveness, load and admission state.
type LoadInfo struct {
	Load     int
	Overload int
}

func init() {
	wire.RegisterName("core.LoadInfo", LoadInfo{})
}

// OverloadGrade reports this node's current admission-control state.
// Always OverloadNone while MailboxBound is 0: without a bound nothing
// sheds, so there is no signal to grade.
func (rt *Runtime) OverloadGrade() OverloadGrade {
	bound := rt.cfg.MailboxBound
	if bound <= 0 {
		return OverloadNone
	}
	if last := rt.lastShed.Load(); last != 0 && time.Since(time.Unix(0, last)) < overloadShedWindow {
		return OverloadShedding
	}
	// Busy when the queued backlog crossed half the node's aggregate
	// mailbox capacity (bound × hosted actors). Occupancy is a gauge, so
	// unlike the shed signal it clears itself as the backlog drains.
	if hosted := rt.load.Load(); hosted > 0 && rt.queuedTasks.Load()*2 >= int64(bound)*hosted {
		return OverloadBusy
	}
	return OverloadNone
}

// noteShed records one shed call: the counter feeds Stats, the timestamp
// drives the OverloadShedding grade.
func (rt *Runtime) noteShed() {
	rt.stats.mailboxSheds.Add(1)
	rt.lastShed.Store(time.Now().UnixNano())
}

// noteOverload folds a probed peer's grade into its health record,
// invalidating the consistent-hash ring when the peer crosses the
// Shedding boundary in either direction (hot nodes are excluded from
// virtual-object placement just like down ones).
func (rt *Runtime) noteOverload(node int, g OverloadGrade) {
	rt.healthMu.Lock()
	h := rt.health[node]
	if h == nil {
		h = &peerHealth{}
		rt.health[node] = h
	}
	was := h.overload
	h.overload = g
	rt.healthMu.Unlock()
	if (was == OverloadShedding) != (g == OverloadShedding) {
		rt.ringEpoch.Add(1)
	}
}

// peerOverload reports the last probed grade of a peer (unknown nodes,
// and this node itself, read OverloadNone — a node never excludes itself,
// mirroring the Down-exclusion rule, so the ring cannot empty).
func (rt *Runtime) peerOverload(node int) OverloadGrade {
	rt.healthMu.Lock()
	defer rt.healthMu.Unlock()
	if h, ok := rt.health[node]; ok {
		return h.overload
	}
	return OverloadNone
}

// peerShedding reports whether a peer is currently graded Shedding.
func (rt *Runtime) peerShedding(node int) bool {
	return rt.peerOverload(node) == OverloadShedding
}

// LoadInfo reports the node's load and overload grade in one reply; it is
// the probe target of both the health loop and the placement load vector.
func (s *omService) LoadInfo() LoadInfo {
	return LoadInfo{Load: s.rt.Load(), Overload: int(s.rt.OverloadGrade())}
}
