package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/remoting"
	"repro/internal/transport"
)

// counterObj is a stateful parallel-object class used across the tests.
type counterObj struct {
	mu   sync.Mutex
	vals []int
	n    int
}

func (c *counterObj) Add(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vals = append(c.vals, v)
	c.n += v
}

func (c *counterObj) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counterObj) Values() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.vals))
	copy(out, c.vals)
	return out
}

func (c *counterObj) Fail() error { return fmt.Errorf("counter failure") }

// slowObj simulates a coarse grain.
type slowObj struct{}

func (slowObj) Work(ms int) int {
	time.Sleep(time.Duration(ms) * time.Millisecond)
	return ms
}

// startNodes boots n joined runtimes over one memory network.
func startNodes(t *testing.T, n int, mutate func(i int, cfg *Config)) []*Runtime {
	t.Helper()
	net := transport.NewMemNetwork()
	rts := make([]*Runtime, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := Config{NodeID: i, Channel: remoting.NewTCPChannel(net)}
		if mutate != nil {
			mutate(i, &cfg)
		}
		rt, err := Start(cfg, fmt.Sprintf("mem://n%d", i))
		if err != nil {
			t.Fatal(err)
		}
		rts[i] = rt
		addrs[i] = rt.Addr()
		t.Cleanup(rt.Close)
	}
	for _, rt := range rts {
		if err := rt.JoinCluster(addrs); err != nil {
			t.Fatal(err)
		}
	}
	for _, rt := range rts {
		rt.RegisterClass("counter", func() any { return &counterObj{} })
		rt.RegisterClass("slow", func() any { return &slowObj{} })
	}
	return rts
}

func TestLocalParallelObject(t *testing.T) {
	rts := startNodes(t, 1, nil)
	p, err := rts[0].NewParallelObject("counter")
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsLocal() {
		t.Error("single-node object should be local")
	}
	p.Post("Add", 2)
	p.Post("Add", 3)
	got, err := p.Invoke("Total")
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("Total = %v, want 5 (sync call must see prior posts)", got)
	}
}

func TestUnregisteredClass(t *testing.T) {
	rts := startNodes(t, 1, nil)
	if _, err := rts[0].NewParallelObject("nope"); err == nil {
		t.Error("creating unregistered class should fail")
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	rts := startNodes(t, 3, nil)
	placed := map[bool]int{}
	for i := 0; i < 6; i++ {
		p, err := rts[0].NewParallelObject("counter")
		if err != nil {
			t.Fatal(err)
		}
		placed[p.IsLocal()]++
	}
	// Round robin over 3 nodes: 2 of 6 local, 4 remote.
	if placed[true] != 2 || placed[false] != 4 {
		t.Errorf("placement local=%d remote=%d, want 2/4", placed[true], placed[false])
	}
	// Loads spread across nodes (placement counts as hosting).
	total := 0
	for _, rt := range rts {
		total += rt.Load()
	}
	if total != 6 {
		t.Errorf("total hosted objects = %d, want 6", total)
	}
}

func TestRemoteInvokeAndOrdering(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
	})
	p, err := rts[0].NewParallelObject("counter")
	if err != nil {
		t.Fatal(err)
	}
	if p.IsLocal() {
		t.Fatal("object should be remote")
	}
	const n = 40
	for i := 1; i <= n; i++ {
		p.Post("Add", i)
	}
	got, err := p.Invoke("Values")
	if err != nil {
		t.Fatal(err)
	}
	vals, err2 := asIntSlice(got)
	if err2 != nil {
		t.Fatal(err2)
	}
	if len(vals) != n {
		t.Fatalf("got %d values, want %d", len(vals), n)
	}
	for i, v := range vals {
		if v != i+1 {
			t.Fatalf("value %d = %d; async ordering violated", i, v)
		}
	}
	if p.AsyncErr() != nil {
		t.Errorf("async error: %v", p.AsyncErr())
	}
}

// forceNode always places on one node.
type forceNode struct{ node int }

func (f *forceNode) Pick(self int, loads []NodeLoad) int { return f.node }

func asIntSlice(v any) ([]int, error) {
	switch x := v.(type) {
	case []int:
		return x, nil
	case []any:
		out := make([]int, len(x))
		for i, e := range x {
			n, ok := e.(int)
			if !ok {
				return nil, fmt.Errorf("element %d is %T", i, e)
			}
			out[i] = n
		}
		return out, nil
	}
	return nil, fmt.Errorf("not an int slice: %T", v)
}

func TestAggregationBatches(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
		cfg.Aggregation = AggregationConfig{MaxCalls: 8}
	})
	p, err := rts[0].NewParallelObject("counter")
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		p.Post("Add", 1)
	}
	p.Wait()
	got, err := p.Invoke("Total")
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("Total = %v, want %d", got, n)
	}
	st := rts[0].Stats()
	if st.BatchesSent != n/8 {
		t.Errorf("batches sent = %d, want %d", st.BatchesSent, n/8)
	}
	if st.CallsAggregated != n {
		t.Errorf("calls aggregated = %d, want %d", st.CallsAggregated, n)
	}
}

func TestAggregationFlushOnSyncCall(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
		cfg.Aggregation = AggregationConfig{MaxCalls: 100}
	})
	p, _ := rts[0].NewParallelObject("counter")
	p.Post("Add", 7) // buffered, far below MaxCalls
	got, err := p.Invoke("Total")
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("sync call did not flush buffered posts: Total = %v", got)
	}
}

func TestAggregationMaxDelayTimer(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
		cfg.Aggregation = AggregationConfig{MaxCalls: 1000, MaxDelay: 20 * time.Millisecond}
	})
	p, _ := rts[0].NewParallelObject("counter")
	p.Post("Add", 5)
	deadline := time.Now().Add(2 * time.Second)
	for {
		got, err := p.Invoke2Total(t)
		if err != nil {
			t.Fatal(err)
		}
		if got == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("MaxDelay timer never flushed the buffer")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Invoke2Total reads Total without flushing the aggregation buffer, so the
// timer path is observable. It bypasses Proxy.Invoke's flush-first rule via
// the raw remote endpoint.
func (p *Proxy) Invoke2Total(t *testing.T) (any, error) {
	t.Helper()
	return p.endpoint().Invoke("Invoke1", "Total", []any{})
}

func TestAggregationMethodChangeFlushes(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
		cfg.Aggregation = AggregationConfig{MaxCalls: 100}
	})
	p, _ := rts[0].NewParallelObject("counter")
	p.Post("Add", 1)
	p.Post("Add", 2)
	// Switching methods must flush the Add buffer first to keep order.
	p.Post("Fail")
	p.Wait()
	got, err := p.Invoke("Total")
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("Total = %v, want 3", got)
	}
	if p.AsyncErr() == nil {
		t.Error("Fail error not surfaced through AsyncErr")
	}
}

func TestAlwaysAgglomerate(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Agglomeration = AlwaysAgglomerate{}
	})
	p, err := rts[0].NewParallelObject("counter")
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsAgglomerated() {
		t.Fatal("policy Always should agglomerate")
	}
	// Posts execute synchronously and serially: effects visible at once.
	p.Post("Add", 4)
	got, _ := p.Invoke("Total")
	if got != 4 {
		t.Errorf("Total = %v immediately after post", got)
	}
	if rts[0].Stats().ObjectsAgglomerated != 1 {
		t.Errorf("stats agglomerated = %d", rts[0].Stats().ObjectsAgglomerated)
	}
}

func TestAdaptiveAgglomeration(t *testing.T) {
	policy := AdaptiveAgglomeration{MinGrain: 10 * time.Millisecond, MinLocalLoad: 0, MinSamples: 3}
	rts := startNodes(t, 1, func(i int, cfg *Config) {
		cfg.Agglomeration = policy
	})
	rt := rts[0]
	// Before samples exist, objects stay parallel.
	p1, _ := rt.NewParallelObject("counter")
	if p1.IsAgglomerated() {
		t.Fatal("agglomerated without samples")
	}
	// Feed fine-grain samples (fast Add calls).
	for i := 0; i < 5; i++ {
		if _, err := p1.Invoke("Total"); err != nil {
			t.Fatal(err)
		}
	}
	stats := rt.ClassStatsFor("counter")
	if stats.Calls < 3 {
		t.Fatalf("class stats not recorded: %+v", stats)
	}
	p2, _ := rt.NewParallelObject("counter")
	if !p2.IsAgglomerated() {
		t.Error("fine-grain class not agglomerated")
	}
	// Coarse class stays parallel.
	ps, _ := rt.NewParallelObject("slow")
	for i := 0; i < 3; i++ {
		ps.Invoke("Work", 15)
	}
	ps2, _ := rt.NewParallelObject("slow")
	if ps2.IsAgglomerated() {
		t.Error("coarse-grain class wrongly agglomerated")
	}
}

func TestLeastLoadedPlacement(t *testing.T) {
	loads := []NodeLoad{{Node: 0, Load: 5}, {Node: 1, Load: 2}, {Node: 2, Load: 9}}
	if got := (LeastLoaded{}).Pick(0, loads); got != 1 {
		t.Errorf("LeastLoaded picked %d, want 1", got)
	}
	// Tie breaks toward self.
	loads = []NodeLoad{{Node: 0, Load: 2}, {Node: 1, Load: 2}}
	if got := (LeastLoaded{}).Pick(1, loads); got != 1 {
		t.Errorf("tie broke to %d, want self 1", got)
	}
}

func TestLocalOnlyPlacement(t *testing.T) {
	if got := (LocalOnly{}).Pick(3, []NodeLoad{{Node: 0}, {Node: 3}}); got != 3 {
		t.Errorf("LocalOnly picked %d", got)
	}
}

func TestProxyRefAttachAcrossNodes(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = LocalOnly{}
	})
	// Node 0 creates a local object and ships its ref to node 1.
	p0, err := rts[0].NewParallelObject("counter")
	if err != nil {
		t.Fatal(err)
	}
	ref := p0.Ref()
	p1 := rts[1].Attach(ref)
	if p1.IsLocal() {
		t.Fatal("attached proxy on another node should be remote")
	}
	p1.Post("Add", 11)
	p1.Wait()
	got, err := p0.Invoke("Total")
	if err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Errorf("Total = %v after remote post through attached ref", got)
	}
	// Attaching on the hosting node binds locally.
	pSelf := rts[0].Attach(ref)
	if !pSelf.IsLocal() {
		t.Error("attach on hosting node should be local")
	}
}

func TestFutureInvokeAsync(t *testing.T) {
	rts := startNodes(t, 1, nil)
	p, _ := rts[0].NewParallelObject("slow")
	start := time.Now()
	f := p.InvokeAsync("Work", 30)
	if time.Since(start) > 20*time.Millisecond {
		t.Error("InvokeAsync blocked the caller")
	}
	got, err := f.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Errorf("Work = %v", got)
	}
}

func TestDestroyLocalAndRemote(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
	})
	p, err := rts[0].NewParallelObject("counter")
	if err != nil {
		t.Fatal(err)
	}
	if rts[1].Load() != 1 {
		t.Fatalf("remote node load = %d", rts[1].Load())
	}
	if err := p.Destroy(); err != nil {
		t.Fatal(err)
	}
	if rts[1].Load() != 0 {
		t.Errorf("load after destroy = %d", rts[1].Load())
	}
	if _, err := p.Invoke("Total"); err == nil {
		t.Error("invoke after destroy should fail")
	}
}

func TestRuntimeStatsCounting(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
	})
	p, _ := rts[0].NewParallelObject("counter")
	p.Post("Add", 1)
	p.Invoke("Total")
	st := rts[0].Stats()
	if st.ObjectsCreated != 1 || st.ObjectsRemote != 1 {
		t.Errorf("creation stats = %+v", st)
	}
	if st.AsyncCalls != 1 || st.SyncCalls != 1 {
		t.Errorf("call stats = %+v", st)
	}
}

func TestOMServiceRemoteAPI(t *testing.T) {
	rts := startNodes(t, 2, nil)
	om := remoting.NewObjRef(rts[0].cfg.Channel, rts[1].Addr(), omURI)
	res, err := om.Invoke("Ping")
	if err != nil {
		t.Fatal(err)
	}
	if res != "pong" {
		t.Errorf("Ping = %v", res)
	}
	loadRes, err := om.Invoke("Load")
	if err != nil {
		t.Fatal(err)
	}
	if loadRes != 0 {
		t.Errorf("Load = %v", loadRes)
	}
}

func TestJoinClusterValidation(t *testing.T) {
	rts := startNodes(t, 1, nil)
	if err := rts[0].JoinCluster([]string{}); err == nil {
		t.Error("empty cluster accepted")
	}
	if err := rts[0].JoinCluster([]string{"mem://wrong"}); err == nil {
		t.Error("mismatched self address accepted")
	}
}

func TestConcurrentCreations(t *testing.T) {
	rts := startNodes(t, 3, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := rts[0].NewParallelObject("counter")
			if err != nil {
				errs <- err
				return
			}
			p.Post("Add", 1)
			if got, err := p.Invoke("Total"); err != nil {
				errs <- err
			} else if got != 1 {
				errs <- fmt.Errorf("Total = %v", got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestActorSequentialExecution(t *testing.T) {
	// A local active object must process posts strictly sequentially even
	// under concurrent posters (active-object semantics: no data races in
	// the IO).
	rts := startNodes(t, 1, nil)
	p, _ := rts[0].NewParallelObject("counter")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Post("Add", 1)
			}
		}()
	}
	wg.Wait()
	p.Wait()
	got, err := p.Invoke("Total")
	if err != nil {
		t.Fatal(err)
	}
	if got != 400 {
		t.Errorf("Total = %v, want 400", got)
	}
}
