package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// modelObj is the reference model: operations applied sequentially.
type modelObj struct {
	vals []int
}

// The property: for ANY sequence of Post("Add", v) and sync Invoke("Values")
// operations, under ANY configuration (placement, aggregation), the observed
// value sequences equal the model's — i.e. per-object asynchronous calls
// are executed exactly once, in order, and sync calls are correctly
// ordered after them. This is the SCOOPP semantics the optimisations must
// preserve (aggregation and agglomeration are transparent).

type opSeq struct {
	ops []op
}

type op struct {
	add   bool
	value int
}

// Generate implements quick.Generator: sequences of 1-40 mixed operations.
func (opSeq) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(40)
	ops := make([]op, n)
	for i := range ops {
		ops[i] = op{add: r.Intn(4) != 0, value: r.Intn(1000)}
	}
	return reflect.ValueOf(opSeq{ops: ops})
}

// runScenario executes the op sequence against a fresh cluster config and
// compares every sync observation with the model.
func runScenario(t *testing.T, seq opSeq, mutate func(cfg *Config)) error {
	t.Helper()
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		if mutate != nil {
			mutate(cfg)
		}
	})
	p, err := rts[0].NewParallelObject("counter")
	if err != nil {
		return err
	}
	model := modelObj{}
	for i, o := range seq.ops {
		if o.add {
			p.Post("Add", o.value)
			model.vals = append(model.vals, o.value)
			continue
		}
		res, err := p.Invoke("Values")
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		got, err := asIntSlice(res)
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		if len(got) != len(model.vals) {
			return fmt.Errorf("op %d: observed %d values, model has %d", i, len(got), len(model.vals))
		}
		for j := range got {
			if got[j] != model.vals[j] {
				return fmt.Errorf("op %d: value %d = %d, model %d", i, j, got[j], model.vals[j])
			}
		}
	}
	p.Wait()
	if err := p.AsyncErr(); err != nil {
		return err
	}
	return nil
}

func TestPropertySequentialConsistencyRemote(t *testing.T) {
	f := func(seq opSeq) bool {
		err := runScenario(t, seq, func(cfg *Config) {
			cfg.Placement = &forceNode{node: 1}
		})
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertySequentialConsistencyAggregated(t *testing.T) {
	f := func(seq opSeq) bool {
		err := runScenario(t, seq, func(cfg *Config) {
			cfg.Placement = &forceNode{node: 1}
			cfg.Aggregation = AggregationConfig{MaxCalls: 5}
		})
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertySequentialConsistencyAgglomerated(t *testing.T) {
	f := func(seq opSeq) bool {
		err := runScenario(t, seq, func(cfg *Config) {
			cfg.Agglomeration = AlwaysAgglomerate{}
		})
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPropertySequentialConsistencyLocal(t *testing.T) {
	f := func(seq opSeq) bool {
		err := runScenario(t, seq, func(cfg *Config) {
			cfg.Placement = LocalOnly{}
		})
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAggregationConservation: for any MaxCalls and any post count,
// batches × sizes account for every call (none lost, none duplicated).
func TestPropertyAggregationConservation(t *testing.T) {
	f := func(rawMax uint8, rawPosts uint8) bool {
		maxCalls := int(rawMax%16) + 2 // 2..17
		posts := int(rawPosts%120) + 1 // 1..120
		rts := startNodes(t, 2, func(i int, cfg *Config) {
			cfg.Placement = &forceNode{node: 1}
			cfg.Aggregation = AggregationConfig{MaxCalls: maxCalls}
		})
		p, err := rts[0].NewParallelObject("counter")
		if err != nil {
			t.Log(err)
			return false
		}
		for i := 0; i < posts; i++ {
			p.Post("Add", 1)
		}
		p.Wait()
		got, err := p.Invoke("Total")
		if err != nil {
			t.Log(err)
			return false
		}
		if got != posts {
			t.Logf("maxCalls=%d posts=%d total=%v", maxCalls, posts, got)
			return false
		}
		st := rts[0].Stats()
		wantBatches := int64(posts+maxCalls-1) / int64(maxCalls)
		// A sync barrier flushes a partial batch, so the batch count is
		// exactly ceil(posts/maxCalls).
		if st.BatchesSent != wantBatches {
			t.Logf("batches=%d want %d", st.BatchesSent, wantBatches)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAggregationTimerDelivers: every buffered call is eventually
// delivered by the MaxDelay timer even when the buffer never fills.
func TestPropertyAggregationTimerDelivers(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
		cfg.Aggregation = AggregationConfig{MaxCalls: 1000, MaxDelay: 10 * time.Millisecond}
	})
	p, err := rts[0].NewParallelObject("counter")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p.Post("Add", 1)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		// Bypass the flush-on-sync path to observe the timer.
		res, err := p.endpoint().Invoke("Invoke1", "Total", []any{})
		if err != nil {
			t.Fatal(err)
		}
		if res == 3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timer never flushed: total = %v", res)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
