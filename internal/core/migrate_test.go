package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/errs"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// journalObj is a migratable class: its state is exported so snapshots
// carry it across nodes.
type journalObj struct {
	Vals []int64
}

func (j *journalObj) Append(v int64) { j.Vals = append(j.Vals, v) }

func (j *journalObj) Snapshot() []int64 {
	out := make([]int64, len(j.Vals))
	copy(out, j.Vals)
	return out
}

func (j *journalObj) Len() int { return len(j.Vals) }

// registerJournal registers the class on every node.
func registerJournal(rts []*Runtime) {
	for _, rt := range rts {
		rt.RegisterClass("journal", func() any { return &journalObj{} })
	}
}

func asInt64Slice(t *testing.T, v any) []int64 {
	t.Helper()
	switch x := v.(type) {
	case []int64:
		return x
	case []any:
		out := make([]int64, len(x))
		for i, e := range x {
			n, ok := e.(int64)
			if !ok {
				t.Fatalf("element %d is %T", i, e)
			}
			out[i] = n
		}
		return out
	}
	t.Fatalf("not an int64 slice: %T", v)
	return nil
}

// TestMigrateCarriesState: a migrated object keeps its exported state, the
// load accounting moves with it, the generation bumps, and the old proxy
// keeps working through the tombstone.
func TestMigrateCarriesState(t *testing.T) {
	rts := startNodes(t, 3, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
	})
	registerJournal(rts)
	p, err := rts[0].NewParallelObject("journal")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		p.Post("Append", i)
	}
	p.Wait()
	if rts[1].Load() != 1 {
		t.Fatalf("node 1 load = %d before migration", rts[1].Load())
	}

	if err := rts[1].Migrate(p.URI(), 2); err != nil {
		t.Fatal(err)
	}
	if rts[1].Load() != 0 || rts[2].Load() != 1 {
		t.Errorf("loads after migration: node1=%d node2=%d, want 0/1", rts[1].Load(), rts[2].Load())
	}
	if st := rts[1].Stats(); st.ObjectsMigratedOut != 1 {
		t.Errorf("node1 migrated-out = %d", st.ObjectsMigratedOut)
	}
	if st := rts[2].Stats(); st.ObjectsMigratedIn != 1 {
		t.Errorf("node2 migrated-in = %d", st.ObjectsMigratedIn)
	}
	if loc, ok := rts[1].Lookup(p.URI()); !ok || loc.Node != 2 || loc.Gen != 2 {
		t.Errorf("source directory entry = %+v ok=%v, want node 2 gen 2", loc, ok)
	}

	// The old proxy transparently follows the tombstone (one retry) and
	// sees the carried state.
	got, err := p.Invoke("Snapshot")
	if err != nil {
		t.Fatal(err)
	}
	vals := asInt64Slice(t, got)
	if len(vals) != 5 {
		t.Fatalf("snapshot after migration = %v, want 5 carried values", vals)
	}
	// New calls land on the new host.
	p.Post("Append", 6)
	p.Wait()
	if n, err := p.Invoke("Len"); err != nil || n != 6 {
		t.Fatalf("Len = %v, %v", n, err)
	}
	if p.AsyncErr() != nil {
		t.Errorf("async error: %v", p.AsyncErr())
	}
}

// TestMigrateLocalProxyUpgrades: a proxy whose object was local upgrades
// itself to a remote proxy when the object moves away.
func TestMigrateLocalProxyUpgrades(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = LocalOnly{}
	})
	registerJournal(rts)
	p, err := rts[0].NewParallelObject("journal")
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsLocal() {
		t.Fatal("LocalOnly object should start local")
	}
	p.Post("Append", int64(1))
	p.Wait()
	if err := p.Migrate(1); err != nil {
		t.Fatal(err)
	}
	if p.IsLocal() {
		t.Error("proxy should be remote after migrating its object away")
	}
	p.Post("Append", int64(2))
	got, err := p.Invoke("Snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if vals := asInt64Slice(t, got); len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Errorf("snapshot = %v, want [1 2]", vals)
	}
	if p.AsyncErr() != nil {
		t.Errorf("async error: %v", p.AsyncErr())
	}
}

// TestMigrateBackHomeThroughStaleHandle: a handle that stayed local while
// its object migrated away (via the runtime, not the handle) can still
// migrate the object back to its origin node by chasing the forward.
func TestMigrateBackHomeThroughStaleHandle(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = LocalOnly{}
	})
	registerJournal(rts)
	p, err := rts[0].NewParallelObject("journal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("Append", int64(9)); err != nil {
		t.Fatal(err)
	}
	if err := rts[0].Migrate(p.URI(), 1); err != nil {
		t.Fatal(err)
	}
	// The handle never observed the move; bring the object home anyway.
	if err := p.Migrate(0); err != nil {
		t.Fatal(err)
	}
	if rts[0].Load() != 1 || rts[1].Load() != 0 {
		t.Errorf("loads after migrate-home: %d/%d, want 1/0", rts[0].Load(), rts[1].Load())
	}
	if n, err := p.Invoke("Len"); err != nil || n != 1 {
		t.Errorf("object after round trip: Len = %v, %v", n, err)
	}
}

// TestMigrateUnderConcurrentCallers is the acceptance race test: callers
// on two nodes hammer one object through their own proxies while it
// live-migrates; zero calls may be lost and each caller's stream must stay
// in order (callers observe at most one transparent retry, i.e. no
// errors).
func TestMigrateUnderConcurrentCallers(t *testing.T) {
	rts := startNodes(t, 3, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
	})
	registerJournal(rts)
	p, err := rts[0].NewParallelObject("journal")
	if err != nil {
		t.Fatal(err)
	}
	ref := p.Ref()

	const callers = 6
	const perCaller = 120
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	start := make(chan struct{})
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Every caller gets its own proxy; half attach from node 2.
			rt := rts[0]
			if c%2 == 1 {
				rt = rts[2]
			}
			cp := rt.Attach(ref)
			<-start
			for i := 0; i < perCaller; i++ {
				tag := int64(c)*1_000_000 + int64(i)
				if c%3 == 0 {
					// Ordered asynchronous stream.
					cp.Post("Append", tag)
				} else if _, err := cp.Invoke("Append", tag); err != nil {
					errc <- fmt.Errorf("caller %d call %d: %w", c, i, err)
					return
				}
			}
			cp.Wait()
			if err := cp.AsyncErr(); err != nil {
				errc <- fmt.Errorf("caller %d async: %w", c, err)
			}
		}(c)
	}
	close(start)
	// Migrate mid-stream, twice: node1 → node2 → node0.
	time.Sleep(5 * time.Millisecond)
	if err := rts[1].Migrate(p.URI(), 2); err != nil {
		t.Error(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := rts[2].Migrate(p.URI(), 0); err != nil {
		t.Error(err)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	got, err := p.Invoke("Snapshot")
	if err != nil {
		t.Fatal(err)
	}
	vals := asInt64Slice(t, got)
	if len(vals) != callers*perCaller {
		t.Fatalf("journal has %d entries, want %d (lost or duplicated calls)", len(vals), callers*perCaller)
	}
	// Per-caller order must be strictly increasing; no duplicates.
	last := map[int64]int64{}
	for _, v := range vals {
		c, i := v/1_000_000, v%1_000_000
		if prev, ok := last[c]; ok && i <= prev {
			t.Fatalf("caller %d: call %d executed after %d (misordered)", c, i, prev)
		}
		last[c] = i
	}
}

// TestMigrateBoundHandleInvalidation: over the multiplexed channel calls
// travel as bound compact envelopes; after a migration the cached handle
// must re-resolve through the bumped registration generation and observe
// the forward rather than stale dispatch.
func TestMigrateBoundHandleInvalidation(t *testing.T) {
	net := transport.NewMemNetwork()
	rts := make([]*Runtime, 3)
	addrs := make([]string, 3)
	for i := range rts {
		rt, err := Start(Config{NodeID: i, Channel: remoting.NewMultiplexedChannel(net), Placement: &forceNode{node: 1}},
			fmt.Sprintf("mem://mux%d", i))
		if err != nil {
			t.Fatal(err)
		}
		rts[i] = rt
		addrs[i] = rt.Addr()
		t.Cleanup(rt.Close)
	}
	for _, rt := range rts {
		if err := rt.JoinCluster(addrs); err != nil {
			t.Fatal(err)
		}
	}
	registerJournal(rts)
	p, err := rts[0].NewParallelObject("journal")
	if err != nil {
		t.Fatal(err)
	}
	// Bind the (URI, Invoke1) handle with a few calls.
	for i := int64(0); i < 8; i++ {
		if _, err := p.Invoke("Append", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := rts[1].Migrate(p.URI(), 2); err != nil {
		t.Fatal(err)
	}
	// The next bound call hits the tombstone through the same handle and
	// must transparently re-route.
	if n, err := p.Invoke("Len"); err != nil || n != 8 {
		t.Fatalf("Len after migration = %v, %v", n, err)
	}
}

// TestFailoverResolveAfterHostDeath: a caller holding a stale location
// re-resolves through surviving peers when the old host is gone entirely
// (tombstone and all).
func TestFailoverResolveAfterHostDeath(t *testing.T) {
	rts := startNodes(t, 3, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
	})
	registerJournal(rts)
	p, err := rts[0].NewParallelObject("journal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("Append", int64(7)); err != nil {
		t.Fatal(err)
	}
	ref := p.Ref() // still points at node 1

	if err := rts[1].Migrate(p.URI(), 2); err != nil {
		t.Fatal(err)
	}
	rts[1].Close() // the old host dies, taking its tombstone with it

	// A fresh attach from the stale ref dials the dead node, gets
	// ErrNodeDown, and must re-resolve through a surviving peer's OM.
	stale := rts[0].Attach(ref)
	got, err := stale.Invoke("Len")
	if err != nil {
		t.Fatalf("stale proxy after host death: %v", err)
	}
	if got != 1 {
		t.Errorf("Len = %v, want 1", got)
	}
}

// TestDestroyStaleLocalProxyChasesForward: a proxy that was local when
// its object migrated away (and never observed the forward through a
// call) must still destroy the live copy, not just the local tombstone.
func TestDestroyStaleLocalProxyChasesForward(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = LocalOnly{}
	})
	registerJournal(rts)
	p, err := rts[0].NewParallelObject("journal")
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsLocal() {
		t.Fatal("want local proxy")
	}
	// Migrate through the runtime, not the proxy, so the handle stays in
	// local mode with a dead actor.
	if err := rts[0].Migrate(p.URI(), 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Destroy(); err != nil {
		t.Fatal(err)
	}
	if rts[1].Load() != 0 {
		t.Errorf("live copy leaked on node 1: load = %d", rts[1].Load())
	}
}

// TestDoubleDestroyIsIdempotent: destroying an already-destroyed object
// (through local and remote handles alike) reports success, as it did
// before proxies became re-routable.
func TestDoubleDestroyIsIdempotent(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = LocalOnly{}
	})
	p, err := rts[0].NewParallelObject("counter")
	if err != nil {
		t.Fatal(err)
	}
	other := rts[1].Attach(p.Ref())
	if err := p.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := p.Destroy(); err != nil {
		t.Errorf("second destroy through local handle: %v", err)
	}
	if err := other.Destroy(); err != nil {
		t.Errorf("destroy through remote handle after destruction: %v", err)
	}
}

// TestMigrateErrors: unknown URIs, unknown targets and double migration of
// a departed object fail with typed errors.
func TestMigrateErrors(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = LocalOnly{}
	})
	registerJournal(rts)
	if err := rts[0].Migrate("obj/none/0/99", 1); !errors.Is(err, errs.ErrObjectDestroyed) {
		t.Errorf("migrating unknown URI: %v", err)
	}
	p, err := rts[0].NewParallelObject("journal")
	if err != nil {
		t.Fatal(err)
	}
	if err := rts[0].Migrate(p.URI(), 7); err == nil {
		t.Error("migrating to unknown node should fail")
	}
	if err := rts[0].Migrate(p.URI(), 1); err != nil {
		t.Fatal(err)
	}
	// The object departed: a second local migration reports the forward.
	err = rts[0].Migrate(p.URI(), 1)
	var mv *errs.MovedError
	if !errors.As(err, &mv) || mv.Node != 1 {
		t.Errorf("re-migrating departed object: %v", err)
	}
	if !errors.Is(err, errs.ErrObjectMoved) {
		t.Errorf("forward does not unwrap to ErrObjectMoved: %v", err)
	}
}

// TestConcurrentMigrationsSerialized: two racing migrations of one object
// cannot both commit — the actor's pause claim admits one at a time, so
// exactly one copy exists afterwards and the loser reports a typed error
// (already-moved or migration-in-progress).
func TestConcurrentMigrationsSerialized(t *testing.T) {
	for round := 0; round < 10; round++ {
		rts := startNodes(t, 3, func(i int, cfg *Config) {
			cfg.Placement = LocalOnly{}
		})
		registerJournal(rts)
		p, err := rts[0].NewParallelObject("journal")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Invoke("Append", int64(1)); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		results := make([]error, 2)
		for i, to := range []int{1, 2} {
			wg.Add(1)
			go func(i, to int) {
				defer wg.Done()
				results[i] = rts[0].Migrate(p.URI(), to)
			}(i, to)
		}
		wg.Wait()
		wins := 0
		for _, err := range results {
			if err == nil {
				wins++
			}
		}
		if wins != 1 {
			t.Fatalf("round %d: %d migrations committed (errors: %v)", round, wins, results)
		}
		if total := rts[0].Load() + rts[1].Load() + rts[2].Load(); total != 1 {
			t.Fatalf("round %d: %d live copies across the cluster", round, total)
		}
		if n, err := p.Invoke("Len"); err != nil || n != 1 {
			t.Fatalf("round %d: object after race: Len = %v, %v", round, n, err)
		}
	}
}

// TestAcceptObjectDuplicateAndStale: the receiving half of a migration is
// idempotent against the channel's at-most-once retry caveat — a
// duplicate transfer reports success without re-creating, and a stale
// duplicate arriving after the object moved onward must not resurrect old
// state over the forwarding tombstone.
func TestAcceptObjectDuplicateAndStale(t *testing.T) {
	rts := startNodes(t, 3, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
	})
	registerJournal(rts)
	p, err := rts[0].NewParallelObject("journal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("Append", int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := rts[1].Migrate(p.URI(), 2); err != nil {
		t.Fatal(err)
	}
	// Duplicate of the just-applied transfer (same gen): success, no
	// double-create.
	if _, err := rts[2].acceptObject("journal", p.URI(), 2, nil); err != nil {
		t.Fatalf("duplicate accept: %v", err)
	}
	if rts[2].Load() != 1 {
		t.Fatalf("duplicate accept changed load to %d", rts[2].Load())
	}
	// Move onward; then replay the gen-2 transfer against node 2, which
	// now only holds a tombstone. The stale state must not come back.
	if err := rts[2].Migrate(p.URI(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := rts[2].acceptObject("journal", p.URI(), 2, nil); err != nil {
		t.Fatalf("stale accept: %v", err)
	}
	if rts[2].Load() != 0 {
		t.Errorf("stale accept resurrected an object: node 2 load = %d", rts[2].Load())
	}
	if loc, _ := rts[2].Lookup(p.URI()); loc.Node != 0 || loc.Gen != 3 {
		t.Errorf("tombstone lost: node 2 directory = %+v", loc)
	}
	if n, err := p.Invoke("Len"); err != nil || n != 1 {
		t.Errorf("object after stale replay: Len = %v, %v", n, err)
	}
}

// TestAbortAcceptOrdering: a migration compensation must win regardless
// of the order it executes in relative to the transfer it undoes —
// abort-then-accept refuses the accept, accept-then-abort destroys the
// committed copy, and a newer-generation transfer clears the marker.
func TestAbortAcceptOrdering(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = LocalOnly{}
	})
	registerJournal(rts)
	uri := "obj/journal/0/77"

	// Abort first (the compensation outran the transfer): the accept at
	// that generation must refuse.
	rts[1].abortAccept(uri, 2)
	if _, err := rts[1].acceptObject("journal", uri, 2, nil); err == nil {
		t.Fatal("accept after abort committed")
	}
	if rts[1].Load() != 0 {
		t.Fatalf("aborted accept left load %d", rts[1].Load())
	}

	// Accept first, abort second: the committed copy is destroyed.
	if _, err := rts[1].acceptObject("journal", uri, 3, nil); err != nil {
		t.Fatal(err)
	}
	if rts[1].Load() != 1 {
		t.Fatalf("accept did not commit: load %d", rts[1].Load())
	}
	rts[1].abortAccept(uri, 3)
	if rts[1].Load() != 0 {
		t.Fatalf("abort did not destroy the committed copy: load %d", rts[1].Load())
	}

	// A fresh-generation transfer (the source burned gen 3 and retried)
	// commits and clears the marker.
	if _, err := rts[1].acceptObject("journal", uri, 4, nil); err != nil {
		t.Fatal(err)
	}
	if rts[1].Load() != 1 {
		t.Fatalf("retry at burned+1 generation refused: load %d", rts[1].Load())
	}
	rts[1].abortMu.Lock()
	_, lingering := rts[1].aborts[uri]
	rts[1].abortMu.Unlock()
	if lingering {
		t.Error("abort marker not cleared by newer-generation commit")
	}
}

// TestDestroyThroughTombstone: destroying via a proxy that still routes at
// the old host chases the forward and releases the live object.
func TestDestroyThroughTombstone(t *testing.T) {
	rts := startNodes(t, 3, func(i int, cfg *Config) {
		cfg.Placement = &forceNode{node: 1}
	})
	registerJournal(rts)
	p, err := rts[0].NewParallelObject("journal")
	if err != nil {
		t.Fatal(err)
	}
	stale := rts[0].Attach(p.Ref()) // routes at node 1
	if err := rts[1].Migrate(p.URI(), 2); err != nil {
		t.Fatal(err)
	}
	if err := stale.DestroyCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rts[2].Load() != 0 {
		t.Errorf("node 2 load after destroy-through-tombstone = %d", rts[2].Load())
	}
	if _, err := p.Invoke("Len"); err == nil {
		t.Error("invoke after destroy should fail")
	}
}
