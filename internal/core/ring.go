package core

// This file implements the consistent-hash ring that gives virtual objects
// their default placement: every node hashes the same member set to the
// same ring, so "who owns URI X" has one deterministic answer cluster-wide
// without any coordination. Each member contributes ringVnodes points
// (virtual nodes) so ownership spreads evenly and a membership change only
// moves the keys adjacent to the changed member's points — the
// minimal-movement property failover and lazy re-activation rely on.

import (
	"fmt"
	"sort"
)

// ringVnodes is the number of ring points per member. 64 keeps the owner
// distribution within a few percent of uniform for small clusters while a
// full rebuild stays microseconds.
const ringVnodes = 64

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node int
}

// hashRing is an immutable consistent-hash ring over a member set. Build
// one with buildRing; Runtime.ring caches the build per membership epoch.
type hashRing struct {
	points  []ringPoint
	members []int // sorted, distinct
}

// fnv64a hashes s with FNV-1a followed by a 64-bit avalanche finalizer
// (splitmix64's mixer). Plain FNV-1a clusters badly on the short,
// near-identical strings ring points are made of — without the finalizer
// a 3-member ring can leave one member owning nothing. The function is
// the same constant-folded computation on every node — determinism across
// the cluster is the whole point, so no seeds.
func fnv64a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// buildRing constructs the ring for a member set (order-insensitive;
// duplicates are ignored). An empty member set yields an empty ring whose
// lookups report no owner.
func buildRing(members []int) *hashRing {
	seen := make(map[int]bool, len(members))
	r := &hashRing{}
	for _, m := range members {
		if seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: fnv64a(fmt.Sprintf("vnode/%d/%d", m, v)), node: m})
		}
	}
	sort.Ints(r.members)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node id so every member
		// still sorts them identically.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// start returns the index of the first ring point at or after key's hash
// (wrapping past the end).
func (r *hashRing) start(key string) int {
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// owner returns the member owning key — the node of the first ring point
// clockwise from the key's hash — and whether the ring has any members.
func (r *hashRing) owner(key string) (int, bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	return r.points[r.start(key)].node, true
}

// successors returns up to n distinct members after key's owner in ring
// order, never including the owner itself. These are the replica hosts of
// a virtual object — and, because removing the owner's points makes each
// of its keys fall to the next distinct member, the first successor is
// exactly where the key lands after the owner dies.
func (r *hashRing) successors(key string, n int) []int {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	owner := r.points[r.start(key)].node
	return r.walk(key, n, func(node int) bool { return node != owner })
}

// walkFrom returns up to n distinct members in ring order from key's
// position for which keep reports true. Used by successors (skip the
// owner) and by replica shipping (skip the sender).
func (r *hashRing) walk(key string, n int, keep func(node int) bool) []int {
	var out []int
	seen := make(map[int]bool, n)
	start := r.start(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] || !keep(p.node) {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}
