package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ctxwait"
	"repro/internal/errs"
)

// errActorStopped is returned for calls posted after the actor shut down.
var errActorStopped = fmt.Errorf("core: %w", errs.ErrObjectDestroyed)

// errActorMigrating rejects a second concurrent migration of one actor;
// the pause flag doubles as the per-object migration claim.
var errActorMigrating = fmt.Errorf("core: migration already in progress")

// actor gives a locally hosted parallel object its own thread of control:
// calls enqueue into a mailbox processed in order by one goroutine,
// providing the active-object semantics of SCOOPP parallel objects while
// intra-grain callers continue immediately (paper Fig. 3 call b executed
// asynchronously).
type actor struct {
	w *ioWrapper
	// bound caps the queued (not executing) tasks; 0 = unbounded. shed
	// picks the victim when the bound is hit (see Config.MailboxBound).
	bound int
	shed  ShedPolicy

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []actorTask
	stopped bool
	pending int
	// paused blocks new enqueues (migration: the mailbox drains while
	// callers wait); moved, once set, fails every later enqueue with the
	// forward so callers re-route to the object's new node.
	paused bool
	moved  *errs.MovedError
}

type actorTask struct {
	ctx    context.Context // caller's context; nil means background
	method string
	args   []any
	batch  []any // non-nil for aggregate messages
	reply  chan actorResult
}

type actorResult struct {
	val any
	err error
}

func newActor(w *ioWrapper) *actor {
	a := &actor{w: w, bound: w.rt.cfg.MailboxBound, shed: w.rt.cfg.Shed}
	a.cond = sync.NewCond(&a.mu)
	go a.run()
	return a
}

func (a *actor) run() {
	for {
		a.mu.Lock()
		for len(a.queue) == 0 && !a.stopped {
			a.cond.Wait()
		}
		if len(a.queue) == 0 && a.stopped {
			a.mu.Unlock()
			return
		}
		t := a.queue[0]
		a.queue = a.queue[1:]
		a.mu.Unlock()
		a.w.rt.queuedTasks.Add(-1)

		ctx := t.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		var res actorResult
		if err := ctx.Err(); err != nil {
			// The caller gave up while the task sat in the mailbox:
			// skip execution, matching what a context-aware method
			// would do on entry. An expired deadline is counted as a
			// dequeue-time drop — work the server admitted but could
			// not start in time.
			res.err = err
			if errors.Is(err, context.DeadlineExceeded) {
				a.w.rt.stats.deadlineDrops.Add(1)
			}
		} else if t.batch != nil {
			_, res.err = a.w.InvokeBatch(ctx, t.method, t.batch)
		} else {
			res.val, res.err = a.w.Invoke1(ctx, t.method, t.args)
		}
		if t.reply != nil {
			t.reply <- res
		}

		a.mu.Lock()
		a.pending--
		if a.pending == 0 {
			a.cond.Broadcast()
		}
		a.mu.Unlock()
	}
}

// enqueue adds a task; reply may be nil for fire-and-forget. While the
// actor is paused for migration, enqueue blocks — bounded by the task's
// context when it carries one; once the object has moved it fails with
// the forward (a *errs.MovedError) instead, so a blocked caller comes out
// of the pause routed to the new node.
func (a *actor) enqueue(t actorTask) error {
	a.mu.Lock()
	if a.paused && a.moved == nil && !a.stopped && t.ctx != nil && t.ctx.Done() != nil {
		// Wake this waiter when the caller's context ends; Broadcast is
		// how every pause-state transition is announced.
		stop := context.AfterFunc(t.ctx, func() {
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
		})
		defer stop()
	}
	for a.paused && a.moved == nil && !a.stopped {
		if t.ctx != nil {
			if err := t.ctx.Err(); err != nil {
				a.mu.Unlock()
				return err
			}
		}
		a.cond.Wait()
	}
	if a.moved != nil {
		mv := a.moved
		a.mu.Unlock()
		return mv
	}
	if a.stopped {
		a.mu.Unlock()
		return errActorStopped
	}
	var evicted actorTask
	shedOldest := false
	if a.bound > 0 && len(a.queue) >= a.bound {
		if a.shed != ShedOldest {
			a.mu.Unlock()
			a.w.rt.noteShed()
			return errs.WithRetryAfter(
				fmt.Errorf("core: mailbox full (%d queued): %w", a.bound, errs.ErrOverloaded),
				shedRetryAfter)
		}
		// ShedOldest: evict the head task to make room; its caller is
		// failed outside the lock (reply channels are buffered, but the
		// mailbox must not care).
		evicted, shedOldest = a.queue[0], true
		a.queue = a.queue[1:]
		a.pending--
		a.w.rt.queuedTasks.Add(-1)
	}
	a.queue = append(a.queue, t)
	a.pending++
	a.w.rt.queuedTasks.Add(1)
	a.cond.Broadcast()
	a.mu.Unlock()
	if shedOldest {
		a.w.rt.noteShed()
		if evicted.reply != nil {
			evicted.reply <- actorResult{err: errs.WithRetryAfter(
				fmt.Errorf("core: evicted from full mailbox (%d queued): %w", a.bound, errs.ErrOverloaded),
				shedRetryAfter)}
		}
	}
	return nil
}

// pause claims the actor for a migration — at most one at a time; the
// paused flag is the claim — and blocks until every queued task has
// executed, the quiescence point the migration snapshots at. The claim is
// refused when the actor is already claimed, moved or stopped, and the
// wait aborts (rolling the claim back) when ctx ends — a task that never
// finishes, for example one blocked posting into its own paused mailbox,
// fails the migration instead of deadlocking it — or when a racing
// destroy stops the actor. Balanced by resume (migration failed) or
// markMoved (succeeded).
func (a *actor) pause(ctx context.Context) error {
	a.mu.Lock()
	switch {
	case a.moved != nil:
		mv := a.moved
		a.mu.Unlock()
		return mv
	case a.stopped:
		a.mu.Unlock()
		return errActorStopped
	case a.paused:
		a.mu.Unlock()
		return errActorMigrating
	}
	a.paused = true
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
		})
		defer stop()
	}
	for a.pending > 0 && !a.stopped {
		if err := ctx.Err(); err != nil {
			a.paused = false
			a.cond.Broadcast()
			a.mu.Unlock()
			return err
		}
		a.cond.Wait()
	}
	if a.stopped {
		// A destroy won the race: the object must not be resurrected
		// elsewhere from a snapshot of its corpse.
		a.paused = false
		a.cond.Broadcast()
		a.mu.Unlock()
		return errActorStopped
	}
	a.mu.Unlock()
	return nil
}

// resume reopens a paused mailbox.
func (a *actor) resume() {
	a.mu.Lock()
	a.paused = false
	a.cond.Broadcast()
	a.mu.Unlock()
}

// markMoved terminates a paused actor after a successful migration:
// callers blocked in enqueue (and all future enqueues) fail with the
// forward, and the mailbox goroutine exits.
func (a *actor) markMoved(mv *errs.MovedError) {
	a.mu.Lock()
	a.moved = mv
	a.paused = false
	a.stopped = true
	a.cond.Broadcast()
	a.mu.Unlock()
}

// abort terminates an actor whose state the cluster has moved past (a
// stale copy being demoted after a failover promotion): unlike markMoved
// it does not wait for the queue to drain — queued tasks would execute
// against superseded state and their effects silently vanish — but fails
// every queued task with the forward so its caller re-routes and retries
// at the fresh copy. The task executing at this instant (if any) still
// completes; its caller received — or will receive — a reply computed on
// state one failover behind, the unavoidable window of asynchronous
// supersession.
func (a *actor) abort(mv *errs.MovedError) {
	a.mu.Lock()
	a.moved = mv
	a.paused = false
	a.stopped = true
	for _, t := range a.queue {
		if t.reply != nil {
			t.reply <- actorResult{err: mv}
		}
		a.pending--
	}
	a.w.rt.queuedTasks.Add(int64(-len(a.queue)))
	a.queue = nil
	a.cond.Broadcast()
	a.mu.Unlock()
}

// call performs a synchronous invocation through the mailbox, preserving
// order with earlier asynchronous posts.
func (a *actor) call(method string, args []any) (any, error) {
	return a.callCtx(context.Background(), method, args)
}

// callCtx is call bounded by ctx: if ctx ends before the mailbox reaches
// the task, the caller unblocks with ctx.Err() (the task is skipped when
// its turn comes; the reply channel is buffered, so nothing leaks).
func (a *actor) callCtx(ctx context.Context, method string, args []any) (any, error) {
	reply := make(chan actorResult, 1)
	if err := a.enqueue(actorTask{ctx: ctx, method: method, args: args, reply: reply}); err != nil {
		return nil, err
	}
	if ctx == nil || ctx.Done() == nil {
		res := <-reply
		return res.val, res.err
	}
	select {
	case res := <-reply:
		return res.val, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// post performs an asynchronous invocation; execution errors are reported
// to onErr. An enqueue-time failure (object destroyed or moved before the
// task entered the mailbox — nothing executed) is only returned, so the
// caller can re-route or record it without onErr double-reporting. A
// non-nil ctx cancels the task if it is still queued when ctx ends.
func (a *actor) post(ctx context.Context, method string, args []any, onErr func(error)) error {
	reply := make(chan actorResult, 1)
	if err := a.enqueue(actorTask{ctx: ctx, method: method, args: args, reply: reply}); err != nil {
		return err
	}
	go func() {
		if res := <-reply; res.err != nil && onErr != nil {
			onErr(res.err)
		}
	}()
	return nil
}

// postBatch enqueues an aggregate message.
func (a *actor) postBatch(method string, calls []any, onErr func(error)) {
	reply := make(chan actorResult, 1)
	if err := a.enqueue(actorTask{method: method, batch: calls, reply: reply}); err != nil {
		if onErr != nil {
			onErr(err)
		}
		return
	}
	go func() {
		if res := <-reply; res.err != nil && onErr != nil {
			onErr(res.err)
		}
	}()
}

// wait blocks until the mailbox is drained.
func (a *actor) wait() {
	a.mu.Lock()
	for a.pending > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// waitCtx is wait bounded by ctx; the mailbox keeps draining in the
// background when the wait is abandoned.
func (a *actor) waitCtx(ctx context.Context) error {
	return ctxwait.Drain(ctx, a.wait)
}

// stop drains the mailbox and terminates the goroutine.
func (a *actor) stop() {
	a.mu.Lock()
	a.stopped = true
	a.cond.Broadcast()
	for a.pending > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// actorEndpoint adapts an actor to the remoting dispatcher so remote
// callers share the mailbox (and therefore the ordering) of local callers.
// The ctx parameters receive the server-side request context, carrying the
// remote caller's deadline into the mailbox wait.
type actorEndpoint struct {
	a *actor
}

// Invoke1 executes one invocation through the mailbox.
func (e *actorEndpoint) Invoke1(ctx context.Context, method string, args []any) (any, error) {
	return e.a.callCtx(ctx, method, args)
}

// InvokeBatch replays an aggregate message through the mailbox as a single
// task, so a batch executes atomically with respect to other calls.
func (e *actorEndpoint) InvokeBatch(ctx context.Context, method string, calls []any) (int, error) {
	reply := make(chan actorResult, 1)
	if err := e.a.enqueue(actorTask{ctx: ctx, method: method, batch: calls, reply: reply}); err != nil {
		return 0, err
	}
	if ctx == nil || ctx.Done() == nil {
		res := <-reply
		if res.err != nil {
			return 0, res.err
		}
		return len(calls), nil
	}
	select {
	case res := <-reply:
		if res.err != nil {
			return 0, res.err
		}
		return len(calls), nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}
