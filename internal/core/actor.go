package core

import (
	"errors"
	"sync"
)

// errActorStopped is returned for calls posted after the actor shut down.
var errActorStopped = errors.New("core: parallel object destroyed")

// actor gives a locally hosted parallel object its own thread of control:
// calls enqueue into a mailbox processed in order by one goroutine,
// providing the active-object semantics of SCOOPP parallel objects while
// intra-grain callers continue immediately (paper Fig. 3 call b executed
// asynchronously).
type actor struct {
	w *ioWrapper

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []actorTask
	stopped bool
	pending int
}

type actorTask struct {
	method string
	args   []any
	batch  []any // non-nil for aggregate messages
	reply  chan actorResult
}

type actorResult struct {
	val any
	err error
}

func newActor(w *ioWrapper) *actor {
	a := &actor{w: w}
	a.cond = sync.NewCond(&a.mu)
	go a.run()
	return a
}

func (a *actor) run() {
	for {
		a.mu.Lock()
		for len(a.queue) == 0 && !a.stopped {
			a.cond.Wait()
		}
		if len(a.queue) == 0 && a.stopped {
			a.mu.Unlock()
			return
		}
		t := a.queue[0]
		a.queue = a.queue[1:]
		a.mu.Unlock()

		var res actorResult
		if t.batch != nil {
			_, res.err = a.w.InvokeBatch(t.method, t.batch)
		} else {
			res.val, res.err = a.w.Invoke1(t.method, t.args)
		}
		if t.reply != nil {
			t.reply <- res
		}

		a.mu.Lock()
		a.pending--
		if a.pending == 0 {
			a.cond.Broadcast()
		}
		a.mu.Unlock()
	}
}

// enqueue adds a task; reply may be nil for fire-and-forget.
func (a *actor) enqueue(t actorTask) error {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return errActorStopped
	}
	a.queue = append(a.queue, t)
	a.pending++
	a.cond.Broadcast()
	a.mu.Unlock()
	return nil
}

// call performs a synchronous invocation through the mailbox, preserving
// order with earlier asynchronous posts.
func (a *actor) call(method string, args []any) (any, error) {
	reply := make(chan actorResult, 1)
	if err := a.enqueue(actorTask{method: method, args: args, reply: reply}); err != nil {
		return nil, err
	}
	res := <-reply
	return res.val, res.err
}

// post performs an asynchronous invocation; errors are reported to onErr.
func (a *actor) post(method string, args []any, onErr func(error)) {
	reply := make(chan actorResult, 1)
	if err := a.enqueue(actorTask{method: method, args: args, reply: reply}); err != nil {
		if onErr != nil {
			onErr(err)
		}
		return
	}
	go func() {
		if res := <-reply; res.err != nil && onErr != nil {
			onErr(res.err)
		}
	}()
}

// postBatch enqueues an aggregate message.
func (a *actor) postBatch(method string, calls []any, onErr func(error)) {
	reply := make(chan actorResult, 1)
	if err := a.enqueue(actorTask{method: method, batch: calls, reply: reply}); err != nil {
		if onErr != nil {
			onErr(err)
		}
		return
	}
	go func() {
		if res := <-reply; res.err != nil && onErr != nil {
			onErr(res.err)
		}
	}()
}

// wait blocks until the mailbox is drained.
func (a *actor) wait() {
	a.mu.Lock()
	for a.pending > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// stop drains the mailbox and terminates the goroutine.
func (a *actor) stop() {
	a.mu.Lock()
	a.stopped = true
	a.cond.Broadcast()
	for a.pending > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// actorEndpoint adapts an actor to the remoting dispatcher so remote
// callers share the mailbox (and therefore the ordering) of local callers.
type actorEndpoint struct {
	a *actor
}

// Invoke1 executes one invocation through the mailbox.
func (e *actorEndpoint) Invoke1(method string, args []any) (any, error) {
	return e.a.call(method, args)
}

// InvokeBatch replays an aggregate message through the mailbox as a single
// task, so a batch executes atomically with respect to other calls.
func (e *actorEndpoint) InvokeBatch(method string, calls []any) (int, error) {
	reply := make(chan actorResult, 1)
	if err := e.a.enqueue(actorTask{method: method, batch: calls, reply: reply}); err != nil {
		return 0, err
	}
	res := <-reply
	if res.err != nil {
		return 0, res.err
	}
	return len(calls), nil
}
