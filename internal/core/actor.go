package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/ctxwait"
	"repro/internal/errs"
)

// errActorStopped is returned for calls posted after the actor shut down.
var errActorStopped = fmt.Errorf("core: %w", errs.ErrObjectDestroyed)

// actor gives a locally hosted parallel object its own thread of control:
// calls enqueue into a mailbox processed in order by one goroutine,
// providing the active-object semantics of SCOOPP parallel objects while
// intra-grain callers continue immediately (paper Fig. 3 call b executed
// asynchronously).
type actor struct {
	w *ioWrapper

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []actorTask
	stopped bool
	pending int
}

type actorTask struct {
	ctx    context.Context // caller's context; nil means background
	method string
	args   []any
	batch  []any // non-nil for aggregate messages
	reply  chan actorResult
}

type actorResult struct {
	val any
	err error
}

func newActor(w *ioWrapper) *actor {
	a := &actor{w: w}
	a.cond = sync.NewCond(&a.mu)
	go a.run()
	return a
}

func (a *actor) run() {
	for {
		a.mu.Lock()
		for len(a.queue) == 0 && !a.stopped {
			a.cond.Wait()
		}
		if len(a.queue) == 0 && a.stopped {
			a.mu.Unlock()
			return
		}
		t := a.queue[0]
		a.queue = a.queue[1:]
		a.mu.Unlock()

		ctx := t.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		var res actorResult
		if err := ctx.Err(); err != nil {
			// The caller gave up while the task sat in the mailbox:
			// skip execution, matching what a context-aware method
			// would do on entry.
			res.err = err
		} else if t.batch != nil {
			_, res.err = a.w.InvokeBatch(ctx, t.method, t.batch)
		} else {
			res.val, res.err = a.w.Invoke1(ctx, t.method, t.args)
		}
		if t.reply != nil {
			t.reply <- res
		}

		a.mu.Lock()
		a.pending--
		if a.pending == 0 {
			a.cond.Broadcast()
		}
		a.mu.Unlock()
	}
}

// enqueue adds a task; reply may be nil for fire-and-forget.
func (a *actor) enqueue(t actorTask) error {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return errActorStopped
	}
	a.queue = append(a.queue, t)
	a.pending++
	a.cond.Broadcast()
	a.mu.Unlock()
	return nil
}

// call performs a synchronous invocation through the mailbox, preserving
// order with earlier asynchronous posts.
func (a *actor) call(method string, args []any) (any, error) {
	return a.callCtx(context.Background(), method, args)
}

// callCtx is call bounded by ctx: if ctx ends before the mailbox reaches
// the task, the caller unblocks with ctx.Err() (the task is skipped when
// its turn comes; the reply channel is buffered, so nothing leaks).
func (a *actor) callCtx(ctx context.Context, method string, args []any) (any, error) {
	reply := make(chan actorResult, 1)
	if err := a.enqueue(actorTask{ctx: ctx, method: method, args: args, reply: reply}); err != nil {
		return nil, err
	}
	if ctx == nil || ctx.Done() == nil {
		res := <-reply
		return res.val, res.err
	}
	select {
	case res := <-reply:
		return res.val, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// post performs an asynchronous invocation; errors are reported to onErr.
// A non-nil ctx cancels the task if it is still queued when ctx ends.
func (a *actor) post(ctx context.Context, method string, args []any, onErr func(error)) error {
	reply := make(chan actorResult, 1)
	if err := a.enqueue(actorTask{ctx: ctx, method: method, args: args, reply: reply}); err != nil {
		if onErr != nil {
			onErr(err)
		}
		return err
	}
	go func() {
		if res := <-reply; res.err != nil && onErr != nil {
			onErr(res.err)
		}
	}()
	return nil
}

// postBatch enqueues an aggregate message.
func (a *actor) postBatch(method string, calls []any, onErr func(error)) {
	reply := make(chan actorResult, 1)
	if err := a.enqueue(actorTask{method: method, batch: calls, reply: reply}); err != nil {
		if onErr != nil {
			onErr(err)
		}
		return
	}
	go func() {
		if res := <-reply; res.err != nil && onErr != nil {
			onErr(res.err)
		}
	}()
}

// wait blocks until the mailbox is drained.
func (a *actor) wait() {
	a.mu.Lock()
	for a.pending > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// waitCtx is wait bounded by ctx; the mailbox keeps draining in the
// background when the wait is abandoned.
func (a *actor) waitCtx(ctx context.Context) error {
	return ctxwait.Drain(ctx, a.wait)
}

// stop drains the mailbox and terminates the goroutine.
func (a *actor) stop() {
	a.mu.Lock()
	a.stopped = true
	a.cond.Broadcast()
	for a.pending > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// actorEndpoint adapts an actor to the remoting dispatcher so remote
// callers share the mailbox (and therefore the ordering) of local callers.
// The ctx parameters receive the server-side request context, carrying the
// remote caller's deadline into the mailbox wait.
type actorEndpoint struct {
	a *actor
}

// Invoke1 executes one invocation through the mailbox.
func (e *actorEndpoint) Invoke1(ctx context.Context, method string, args []any) (any, error) {
	return e.a.callCtx(ctx, method, args)
}

// InvokeBatch replays an aggregate message through the mailbox as a single
// task, so a batch executes atomically with respect to other calls.
func (e *actorEndpoint) InvokeBatch(ctx context.Context, method string, calls []any) (int, error) {
	reply := make(chan actorResult, 1)
	if err := e.a.enqueue(actorTask{ctx: ctx, method: method, batch: calls, reply: reply}); err != nil {
		return 0, err
	}
	if ctx == nil || ctx.Done() == nil {
		res := <-reply
		if res.err != nil {
			return 0, res.err
		}
		return len(calls), nil
	}
	select {
	case res := <-reply:
		if res.err != nil {
			return 0, res.err
		}
		return len(calls), nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}
