package core

// This file implements virtual objects — the Orleans-style activation
// model layered on the PR 5 machinery (directory generations, state
// snapshots, health grading, forwarding tombstones):
//
//   - identity: a virtual object is its URI ("virtual/<class>/<key>"),
//     not a host. Nobody creates it; the first call activates it.
//   - placement: the consistent-hash ring over live members (ring.go)
//     gives every node the same owner for a URI with no coordination.
//     Activation is single-flight per URI on the owner, and an owner
//     whose membership view disagrees redirects the caller instead of
//     activating — racing activations on different nodes converge on one
//     live instance through the pre-activation resolve plus ring order.
//   - replication: classes registered with VirtualConfig.Replicas > 0
//     stream state snapshots from the owner to its ring successors after
//     every call (SnapshotEvery <= 1, synchronous: the reply waits for a
//     replica ack, so an acknowledged call survives the owner) or every
//     N calls (asynchronous: replicas trail by up to N calls).
//   - failover: when health grading marks the owner down, each replica
//     holder checks the rebuilt ring; the holder that now owns the key —
//     by the successor invariant, the replica's own node — promotes its
//     freshest snapshot at a bumped generation. Callers re-resolve
//     through the existing ErrNodeDown retry path; a recovered stale
//     owner demotes itself into the same forwarding tombstone a
//     migration leaves, so no new client logic exists anywhere.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errs"
	"repro/internal/remoting"
	"repro/internal/wire"
)

// VirtualConfig is the per-class policy of a virtual class.
type VirtualConfig struct {
	// Replicas is the number of ring-successor nodes that receive passive
	// state snapshots. 0 disables replication: failover re-activates the
	// object from a fresh instance (state is lost with the owner).
	Replicas int
	// SnapshotEvery ships a snapshot to the replicas every N applied
	// calls. Values <= 1 replicate synchronously after every call — the
	// caller's reply is withheld until at least one replica acknowledged,
	// so no acknowledged call is lost when the owner dies. Larger values
	// ship asynchronously; replicas (and therefore a promoted copy) may
	// trail the owner by up to N calls.
	SnapshotEvery int
}

// virtualURIPrefix namespaces virtual objects in the directory and on the
// wire; ownership, replication and demotion only ever apply inside it.
const virtualURIPrefix = "virtual/"

// VirtualURI returns the cluster-wide identity of the virtual object
// (class, key).
func VirtualURI(class, key string) string { return virtualURIPrefix + class + "/" + key }

// isVirtualURI reports whether uri names a virtual object.
func isVirtualURI(uri string) bool { return strings.HasPrefix(uri, virtualURIPrefix) }

// classOfVirtualURI extracts the class component of a virtual URI.
func classOfVirtualURI(uri string) string {
	rest := strings.TrimPrefix(uri, virtualURIPrefix)
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// RegisterVirtualClass registers class as a virtual class: instances are
// addressed by key through VirtualObject and activated on demand on their
// ring owner. Every node must register the same virtual classes with the
// same config (exactly like RegisterClass).
func (rt *Runtime) RegisterVirtualClass(class string, factory func() any, cfg VirtualConfig) {
	rt.RegisterClass(class, factory)
	rt.virtMu.Lock()
	rt.virtuals[class] = cfg
	rt.virtMu.Unlock()
}

// virtualConfig returns the class's virtual policy, if registered virtual.
func (rt *Runtime) virtualConfig(class string) (VirtualConfig, bool) {
	rt.virtMu.Lock()
	defer rt.virtMu.Unlock()
	cfg, ok := rt.virtuals[class]
	return cfg, ok
}

// liveMembers snapshots the node ids this runtime considers part of the
// cluster right now: every known peer not graded Down — and not currently
// Shedding, so virtual-object activation routes around hot nodes the same
// way it routes around dead ones — self included. Excluding self is never
// allowed (the ring must not empty), which also gives a shedding node a
// self-view where it still owns its keys: views diverge briefly, exactly
// the tolerance the activation/demotion machinery already absorbs for
// Down transitions. If every peer is hot the peers stay in (there is no
// cooler node to prefer).
func (rt *Runtime) liveMembers() []int {
	rt.mu.Lock()
	peers := rt.peers
	rt.mu.Unlock()
	members := make([]int, 0, len(peers))
	hot := 0
	for _, p := range peers {
		if p.node != rt.cfg.NodeID {
			if rt.peerDown(p.node) {
				continue
			}
			if rt.peerShedding(p.node) {
				hot++
				continue
			}
		}
		members = append(members, p.node)
	}
	if hot > 0 && len(members) <= 1 {
		// Only self is cool: re-admit the shedding peers rather than
		// collapsing the whole key space onto one node.
		members = members[:0]
		for _, p := range peers {
			if p.node != rt.cfg.NodeID && rt.peerDown(p.node) {
				continue
			}
			members = append(members, p.node)
		}
	}
	return members
}

// ring returns the consistent-hash ring over the live members, rebuilt
// lazily whenever the membership epoch moved (JoinCluster, a peer
// crossing the Down boundary).
func (rt *Runtime) ring() *hashRing {
	epoch := rt.ringEpoch.Load()
	rt.ringMu.Lock()
	defer rt.ringMu.Unlock()
	if rt.ringCache == nil || rt.ringCacheEpoch != epoch {
		rt.ringCache = buildRing(rt.liveMembers())
		rt.ringCacheEpoch = epoch
	}
	return rt.ringCache
}

// VirtualOwner reports which node this runtime's membership view assigns
// ownership of the virtual object (class, key) — an observability and
// test hook, not a routing guarantee (views converge, they are not
// atomic).
func (rt *Runtime) VirtualOwner(class, key string) (int, bool) {
	return rt.ring().owner(VirtualURI(class, key))
}

// VirtualObject returns a proxy for the virtual object (class, key),
// activating it on its ring owner if no live instance exists yet.
func (rt *Runtime) VirtualObject(class, key string) (*Proxy, error) {
	return rt.VirtualObjectCtx(context.Background(), class, key)
}

// VirtualObjectCtx is VirtualObject bounded by ctx. The returned proxy
// re-routes itself through the ordinary moved/ErrNodeDown retry paths;
// after a failover callers obtain a working route either transparently
// (one retry) or by calling VirtualObjectCtx again.
func (rt *Runtime) VirtualObjectCtx(ctx context.Context, class, key string) (*Proxy, error) {
	if _, ok := rt.virtualConfig(class); !ok {
		return nil, fmt.Errorf("core: class %q is not registered virtual on node %d: %w",
			class, rt.cfg.NodeID, errs.ErrNoSuchClass)
	}
	uri := VirtualURI(class, key)
	rt.actorsMu.Lock()
	a := rt.actors[uri]
	rt.actorsMu.Unlock()
	if a != nil {
		return &Proxy{rt: rt, class: class, mode: modeLocalActive, uri: uri, act: a}, nil
	}
	if loc, ok := rt.dirLookup(uri); ok && loc.Node != rt.cfg.NodeID && !rt.peerDown(loc.Node) {
		return newRemoteProxy(rt, class, uri, loc.Addr, loc.Gen), nil
	}
	return rt.activateAndRoute(ctx, class, uri)
}

// activateHops bounds how many ownership redirects one activation chases:
// membership views converge quickly, so a redirect chain longer than this
// means the cluster is still sorting itself out — fail and let the caller
// retry rather than ping-pong.
const activateHops = 3

// activateAndRoute drives an activation to whatever node currently owns
// uri: activate locally when this node is the owner, otherwise ask the
// owner's object manager, following its redirect when its membership view
// names someone else and skipping owners that cannot be reached.
func (rt *Runtime) activateAndRoute(ctx context.Context, class, uri string) (*Proxy, error) {
	exclude := make(map[int]bool)
	forced := -1
	var lastErr error
	for hop := 0; hop < activateHops; hop++ {
		owner := forced
		forced = -1
		if owner < 0 {
			o, ok := rt.ringOwnerExcluding(uri, exclude)
			if !ok {
				return nil, fmt.Errorf("core: activate %s: no live members", uri)
			}
			owner = o
		}
		var rr ResolveReply
		var err error
		if owner == rt.cfg.NodeID {
			rr, err = rt.activateVirtual(ctx, class, uri)
			if err != nil {
				return nil, err
			}
		} else {
			p, ok := rt.peerFor(owner)
			if !ok || p.om == nil {
				exclude[owner] = true
				continue
			}
			res, ierr := p.om.InvokeCtx(ctx, "ActivateVirtual", class, uri)
			if ierr != nil {
				if ctx.Err() != nil {
					return nil, ierr
				}
				// An unreachable owner is excluded and the next member in
				// ring order tried — the same degraded view its failure
				// will shortly push into the health grades.
				lastErr = ierr
				exclude[owner] = true
				continue
			}
			if err := wire.AssignTo(&rr, res); err != nil {
				return nil, fmt.Errorf("core: activate %s: bad reply from node %d: %w", uri, owner, err)
			}
		}
		if rr.Found {
			rt.dirUpdate(uri, ObjLoc{Node: rr.Node, Addr: rr.Addr, Gen: rr.Gen})
			return rt.proxyAt(class, uri, rr), nil
		}
		if rr.Addr != "" && rr.Node != owner && !exclude[rr.Node] {
			// The callee's membership view names a different owner; chase
			// it once per hop.
			forced = rr.Node
			continue
		}
		lastErr = fmt.Errorf("core: node %d declined to activate %s", owner, uri)
		exclude[owner] = true
	}
	if lastErr == nil {
		lastErr = errors.New("ownership did not converge")
	}
	return nil, fmt.Errorf("core: activate %s: gave up after %d hops: %w", uri, activateHops, lastErr)
}

// ringOwnerExcluding is the ring owner of uri after pretending the
// excluded nodes are gone — the first non-excluded member in ring order,
// exactly where the key would fall if they were down.
func (rt *Runtime) ringOwnerExcluding(uri string, exclude map[int]bool) (int, bool) {
	r := rt.ring()
	if len(exclude) == 0 {
		return r.owner(uri)
	}
	nodes := r.walk(uri, 1, func(node int) bool { return !exclude[node] })
	if len(nodes) == 0 {
		return 0, false
	}
	return nodes[0], true
}

// proxyAt builds the proxy for an activation reply: the local actor when
// the instance lives here, a remote proxy otherwise.
func (rt *Runtime) proxyAt(class, uri string, rr ResolveReply) *Proxy {
	if rr.Node == rt.cfg.NodeID {
		rt.actorsMu.Lock()
		a := rt.actors[uri]
		rt.actorsMu.Unlock()
		if a != nil {
			return &Proxy{rt: rt, class: class, mode: modeLocalActive, uri: uri, act: a}
		}
	}
	return newRemoteProxy(rt, class, uri, rr.Addr, rr.Gen)
}

// activation is one in-flight single-flight activation of a URI.
type activation struct {
	done  chan struct{}
	reply ResolveReply
	err   error
}

// replicaState is one passive replica held on this node: the freshest
// (generation, seq)-ordered snapshot received from the object's owner,
// plus the owner's dedup memory at that point — a promoted replica must
// recognise retries of calls the dead owner already executed.
type replicaState struct {
	class string
	gen   uint64
	seq   uint64
	state []byte
	// dedup mirrors the owner's record LRU. It is an LRU (not a slice) so
	// an incremental ship applies in O(records shipped): per-call
	// synchronous ships would otherwise rebuild an O(accumulated-records)
	// list on every call — a tax that grows as the object ages, exactly
	// what incremental shipping exists to avoid. Put order is the owner's
	// recency order, so this LRU evicts in the owner's eviction order too.
	dedup *remoting.DedupLRU
	// dedupStamp is the owner's dedup write counter this replica's records
	// are complete through: an incremental ship whose base exceeds it has a
	// gap (a missed ship) and is refused in favour of a full resend.
	dedupStamp uint64
}

// activateVirtual ensures a live instance of uri exists, activating it
// here if this node owns it. Concurrent activations of one URI are
// single-flight: one leader runs doActivate, followers wait and share its
// outcome — the server-side half of serialising the first-call duel (the
// client-side half is that every caller's ring names the same owner).
func (rt *Runtime) activateVirtual(ctx context.Context, class, uri string) (ResolveReply, error) {
	rt.actorsMu.Lock()
	hosted := rt.actors[uri] != nil
	rt.actorsMu.Unlock()
	if hosted {
		gen := uint64(1)
		if loc, ok := rt.dirLookup(uri); ok {
			gen = loc.Gen
		}
		return ResolveReply{Found: true, Node: rt.cfg.NodeID, Addr: rt.Addr(), Gen: gen}, nil
	}
	rt.activMu.Lock()
	if act := rt.activations[uri]; act != nil {
		rt.activMu.Unlock()
		select {
		case <-act.done:
			return act.reply, act.err
		case <-ctx.Done():
			return ResolveReply{}, ctx.Err()
		}
	}
	act := &activation{done: make(chan struct{})}
	rt.activations[uri] = act
	rt.activMu.Unlock()
	act.reply, act.err = rt.doActivate(ctx, class, uri)
	rt.activMu.Lock()
	delete(rt.activations, uri)
	rt.activMu.Unlock()
	close(act.done)
	return act.reply, act.err
}

// doActivate is the single-flight body: verify ownership (or redirect),
// converge on an existing live instance anywhere in the cluster, and only
// then create one — from the freshest local replica snapshot when one
// exists (failover promotion), from the factory otherwise — at a
// generation above everything the cluster has seen for this URI.
func (rt *Runtime) doActivate(ctx context.Context, class, uri string) (ResolveReply, error) {
	cfg, ok := rt.virtualConfig(class)
	if !ok {
		return ResolveReply{}, fmt.Errorf("core: class %q is not registered virtual on node %d: %w",
			class, rt.cfg.NodeID, errs.ErrNoSuchClass)
	}
	owner, ok := rt.ring().owner(uri)
	if !ok {
		return ResolveReply{}, fmt.Errorf("core: activate %s: no live members", uri)
	}
	if owner != rt.cfg.NodeID {
		p, ok := rt.peerFor(owner)
		if !ok {
			return ResolveReply{}, fmt.Errorf("core: activate %s: owner node %d unknown here", uri, owner)
		}
		return ResolveReply{Found: false, Node: owner, Addr: p.addr}, nil
	}

	// Converge before creating: a racing activation may have landed
	// elsewhere while this node's view was stale, or the instance may
	// simply still be alive from before a membership flap. Any live copy
	// wins over creating a second one; entries at down nodes only raise
	// the generation floor.
	baseGen := uint64(0)
	excludeAddr := ""
	if loc, ok := rt.dirLookup(uri); ok {
		if loc.Node != rt.cfg.NodeID && !rt.peerDown(loc.Node) {
			return ResolveReply{Found: true, Node: loc.Node, Addr: loc.Addr, Gen: loc.Gen}, nil
		}
		baseGen = loc.Gen
		if loc.Node != rt.cfg.NodeID {
			excludeAddr = loc.Addr
		}
	}
	if loc, ok := rt.resolveRemote(ctx, uri, excludeAddr); ok {
		if loc.Node != rt.cfg.NodeID && !rt.peerDown(loc.Node) {
			return ResolveReply{Found: true, Node: loc.Node, Addr: loc.Addr, Gen: loc.Gen}, nil
		}
		if loc.Gen > baseGen {
			baseGen = loc.Gen
		}
	}
	rt.replMu.Lock()
	st := rt.replicas[uri]
	rt.replMu.Unlock()
	var promoteState []byte
	var promoteGen, promoteSeq uint64
	var promoteDedup []remoting.DedupRecord
	if st != nil {
		promoteState, promoteGen, promoteSeq, promoteDedup = st.state, st.gen, st.seq, st.dedup.Export()
		if st.gen > baseGen {
			baseGen = st.gen
		}
	}
	if cfg.Replicas > 0 {
		// Replica census: an owner that lost a replica target behind a
		// partition reroutes its synchronous ships to another successor, so
		// the freshest acknowledged snapshot may sit on a peer rather than
		// here. Ask every peer before activating and adopt the freshest
		// (generation, seq); each answering peer promises the candidate
		// generation — refusing later deposits from superseded lineages and
		// fencing a stale live copy it still hosts — so no acknowledgement
		// slips in behind the census.
		//
		// The census must reach a MAJORITY of the cluster (self included).
		// A synchronous acknowledgement lives on at least two nodes (owner
		// plus one replica); any majority intersects that pair, so a
		// majority census always sees every acknowledged call. A minority
		// partition therefore refuses to activate rather than resurrect
		// stale state — consistency over minority availability, bounded by
		// the partition itself.
		cr := rt.replicaCensus(ctx, uri, baseGen+1, promoteGen, promoteSeq)
		if n := rt.clusterSize(); cr.reached <= n/2 {
			return ResolveReply{}, fmt.Errorf("core: activate %s: promotion census reached %d of %d nodes (majority required)",
				uri, cr.reached, n)
		}
		if cr.fresher {
			promoteState, promoteGen, promoteSeq, promoteDedup = cr.state, cr.gen, cr.seq, cr.dedup
		}
		if promoteGen > baseGen {
			baseGen = promoteGen
		}
	}
	newGen := baseGen + 1
	// Respect migration abort markers: a poisoned generation must stay
	// burned (see Runtime.abortAccept).
	rt.abortMu.Lock()
	if m := rt.aborts[uri]; m >= newGen {
		newGen = m + 1
	}
	rt.abortMu.Unlock()

	factory, err := rt.factoryFor(class)
	if err != nil {
		return ResolveReply{}, err
	}
	obj := factory()
	registerStateType(obj)
	promoted := false
	if len(promoteState) > 0 {
		// A snapshot that no longer decodes (class changed shape across a
		// rolling upgrade) falls back to a fresh instance: availability
		// over a snapshot nothing can read.
		if snap, derr := (wire.BinFmt{}).Unmarshal(promoteState); derr == nil {
			if adopted, aerr := adoptState(obj, snap); aerr == nil {
				obj = adopted
				promoted = true
			}
		}
	}
	w := &ioWrapper{rt: rt, class: class, obj: obj, uri: uri,
		dedup: remoting.NewDedupLRU(rt.cfg.DedupPerObject)}
	wcfg := cfg
	w.virt = &wcfg
	w.gen.Store(newGen)
	if promoted {
		w.seq.Store(promoteSeq)
		w.snapMu.Lock()
		w.lastSnap, w.lastSeq = promoteState, promoteSeq
		w.snapMu.Unlock()
		// Inherit the dead owner's executed-call memory — only alongside
		// its state: importing records without the matching state would
		// acknowledge effects this instance does not have.
		w.dedup.Import(promoteDedup)
	}
	a := newActor(w)
	rt.actorsMu.Lock()
	if rt.actors[uri] != nil {
		// An AcceptObject (migration in) committed while this activation
		// was resolving; the committed copy wins.
		rt.actorsMu.Unlock()
		a.stop()
		gen := uint64(1)
		if loc, ok := rt.dirLookup(uri); ok {
			gen = loc.Gen
		}
		return ResolveReply{Found: true, Node: rt.cfg.NodeID, Addr: rt.Addr(), Gen: gen}, nil
	}
	rt.actors[uri] = a
	rt.server.Marshal(uri, &actorEndpoint{a: a})
	rt.load.Add(1)
	rt.dirUpdate(uri, ObjLoc{Node: rt.cfg.NodeID, Addr: rt.Addr(), Gen: newGen})
	rt.actorsMu.Unlock()
	rt.replMu.Lock()
	delete(rt.replicas, uri) // the live copy supersedes the passive one
	rt.replMu.Unlock()
	rt.stats.virtualActivations.Add(1)
	if promoted {
		rt.stats.replicaPromotions.Add(1)
		if cfg.Replicas > 0 {
			// Restore redundancy right away: the promoted state's previous
			// replica set centred on the dead owner, not on this node.
			go rt.shipSnapshot(w, promoteState, newGen, promoteSeq, false) //nolint:errcheck // async re-ship
		}
	}
	return ResolveReply{Found: true, Node: rt.cfg.NodeID, Addr: rt.Addr(), Gen: newGen}, nil
}

// ReplicaInfo is one peer's answer to a promotion census (ReplicaAt): its
// passive replica of the URI, if it holds one.
type ReplicaInfo struct {
	Has   bool
	Gen   uint64
	Seq   uint64
	State []byte
	Dedup []remoting.DedupRecord
}

func init() { wire.RegisterName("core.ReplicaInfo", ReplicaInfo{}) }

// censusResult is the outcome of a promotion census: the freshest snapshot
// found across the cluster (fresher=true when it beats the local candidate)
// and how many nodes — self included — contributed their knowledge.
type censusResult struct {
	state   []byte
	gen     uint64
	seq     uint64
	dedup   []remoting.DedupRecord
	fresher bool
	reached int
}

// replicaCensus queries every peer for its freshest knowledge of uri
// (passive replica or fenced live copy) and returns the freshest
// (generation, seq) snapshot. Unreachable peers are skipped, bounded by
// replicaCensusTimeout per peer so promotion latency stays a failover
// cost, not a liveness hazard; the caller enforces the majority quorum.
// candidateGen is promised to every answering peer, which from then on
// refuses deposits from older lineages — and fences a live stale copy it
// still hosts — so no acknowledgement can slip in behind the census.
func (rt *Runtime) replicaCensus(ctx context.Context, uri string, candidateGen, haveGen, haveSeq uint64) censusResult {
	rt.mu.Lock()
	peers := rt.peers
	rt.mu.Unlock()
	out := censusResult{gen: haveGen, seq: haveSeq, reached: 1} // self
	for _, p := range peers {
		if p.node == rt.cfg.NodeID || p.om == nil {
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, replicaCensusTimeout)
		// WithoutBreaker: the census must make a GENUINE attempt at every
		// peer. A breaker left open by a transient fault would mark the
		// freshest replica holder unreachable while quorum is still met via
		// emptier peers — promoting stale state past acknowledged calls.
		// With real attempts the quorum math is airtight for N=3: the two
		// fresh copies (owner, sync replica) plus the initiator overlap any
		// two reachable nodes. The per-peer timeout bounds the cost.
		res, err := p.om.InvokeCtx(remoting.WithoutBreaker(remoting.WithoutRetry(cctx)), "ReplicaAt", uri, candidateGen, rt.cfg.NodeID, rt.Addr())
		cancel()
		if err != nil {
			continue
		}
		out.reached++
		var info ReplicaInfo
		if aerr := wire.AssignTo(&info, res); aerr != nil || !info.Has {
			continue
		}
		if info.Gen > out.gen || (info.Gen == out.gen && info.Seq > out.seq) {
			// The reply's byte slices may alias the transport frame; the
			// adopted snapshot outlives the call, so copy.
			out.state = append([]byte(nil), info.State...)
			out.dedup = copyDedupRecords(info.Dedup)
			out.gen, out.seq, out.fresher = info.Gen, info.Seq, true
		}
	}
	return out
}

// copyDedupRecords deep-copies dedup records, including []byte results that
// may alias a transport receive frame.
func copyDedupRecords(recs []remoting.DedupRecord) []remoting.DedupRecord {
	out := append([]remoting.DedupRecord(nil), recs...)
	for i := range out {
		if b, ok := out[i].Result.([]byte); ok {
			out[i].Result = append([]byte(nil), b...)
		}
	}
	return out
}

// replicaAt answers a promotion census with this node's freshest knowledge
// of uri, and promises candidateGen — deposits from generations below the
// promise are refused from now on (see Runtime.promised). Besides the
// passive replica store, a live copy hosted HERE at a generation below the
// candidate is reported too, from its last shipped snapshot — and fenced
// first: the census is promoting past this copy (this node was an owner
// the promoting node's view lost), so acknowledging further calls here
// would lose them at demotion. The fence-then-read order makes the
// guarantee airtight: any call that passed its fence check committed its
// (snapshot, dedup record) pair before replicating, so the census read —
// which follows the fence write and takes the same snapMu the pair was
// committed under — includes it whole. A call refused by the fence is
// adopted whole or not at all for the same reason: whole, its retry
// replays the recorded reply; absent, its retry executes on the promoted
// lineage exactly once.
//
// A fenced copy is then fully demoted, forwarding to the census initiator
// (fromNode/fromAddr): a copy left merely fenced would refuse calls
// forever if the winner's snapshot ships never reach this node, and —
// worse — directory entries still naming it would route callers into that
// dead end with nothing to repair them. Its final state is deposited in
// the local replica store first, so even a census that subsequently fails
// its majority quorum (and so never promotes anyone) leaves the state
// findable by the retry census.
func (rt *Runtime) replicaAt(uri string, candidateGen uint64, fromNode int, fromAddr string) ReplicaInfo {
	rt.replMu.Lock()
	if candidateGen > rt.promised[uri] {
		rt.promised[uri] = candidateGen
	}
	var info ReplicaInfo
	if st := rt.replicas[uri]; st != nil {
		info = ReplicaInfo{Has: true, Gen: st.gen, Seq: st.seq, State: st.state, Dedup: st.dedup.Export()}
	}
	rt.replMu.Unlock()

	rt.actorsMu.Lock()
	a := rt.actors[uri]
	rt.actorsMu.Unlock()
	if a == nil || a.w.virt == nil {
		return info
	}
	gen := a.w.gen.Load()
	if gen >= candidateGen {
		return info
	}
	a.w.fenced.Store(true)
	a.w.snapMu.Lock()
	snap, seq := a.w.lastSnap, a.w.lastSeq
	recs := a.w.dedup.Export()
	a.w.snapMu.Unlock()
	if snap != nil && (!info.Has || gen > info.Gen || (gen == info.Gen && seq > info.Seq)) {
		info = ReplicaInfo{Has: true, Gen: gen, Seq: seq, State: snap, Dedup: recs}
		rt.replMu.Lock()
		if cur := rt.replicas[uri]; cur == nil || gen > cur.gen || (gen == cur.gen && seq >= cur.seq) {
			lru := remoting.NewDedupLRU(rt.dedupCap())
			lru.Import(copyDedupRecords(recs))
			rt.replicas[uri] = &replicaState{class: a.w.class, gen: gen, seq: seq,
				state: snap, dedup: lru, dedupStamp: maxDedupStamp(recs)}
		}
		rt.replMu.Unlock()
	}
	rt.demoteStale(uri, ObjLoc{Node: fromNode, Addr: fromAddr, Gen: candidateGen})
	return info
}

const (
	// replicateSyncTimeout bounds the per-call synchronous replication
	// fan-out; a replica slower than this fails the ack (the call errors
	// and the caller retries) rather than wedging the owner's mailbox.
	replicateSyncTimeout = 2 * time.Second
	// replicaCensusTimeout bounds each peer query of a promotion census.
	replicaCensusTimeout = 500 * time.Millisecond
	// replicateShipTimeout bounds one asynchronous snapshot ship.
	replicateShipTimeout = time.Second
	// promoteTimeout bounds one failover promotion attempt.
	promoteTimeout = 5 * time.Second
)

// pendingRecord is a dedup record whose commit must be atomic with
// publishing the snapshot that carries its effects: replicateAfterCalls
// stores it inside the snapMu section that updates lastSnap, so a
// promotion census — which reads (lastSnap, dedup memory) under the same
// lock — adopts the call whole or not at all. A record adopted without its
// effects would replay an acknowledgement for state the promoted lineage
// does not have; effects adopted without their record would re-execute the
// fenced call's retry.
type pendingRecord struct {
	tok remoting.CallToken
	rep remoting.DedupReply
}

// commit stores the record in w's dedup memory; nil-safe so callers
// without a token pass nil.
func (r *pendingRecord) commit(w *ioWrapper) {
	if r != nil {
		w.dedup.Put(r.tok, r.rep)
	}
}

// replicateAfterCalls runs in the actor goroutine after n calls applied
// to a replicated virtual object: count them, and when a snapshot is due,
// marshal the (quiesced) state and ship it to the ring-successor
// replicas. In synchronous mode (SnapshotEvery <= 1) a shipped snapshot
// must be acknowledged by at least one replica or the error fails the
// call — the caller retries against a cluster that either still has the
// owner (and re-replicates) or has promoted a replica that saw this
// update; either way an acknowledged call is never lost, at the cost that
// an unacknowledged one may execute twice (the channel's documented
// at-least-once trade).
//
// rec, when non-nil, is the calling invocation's dedup record; it is
// committed on every path out of this function — inside the snapMu
// section when a snapshot is published (see pendingRecord), directly
// otherwise.
func (rt *Runtime) replicateAfterCalls(_ context.Context, w *ioWrapper, n int, rec *pendingRecord) error {
	seq := w.seq.Add(uint64(n))
	cfg := w.virt
	if cfg.Replicas <= 0 {
		rec.commit(w)
		return nil
	}
	every := cfg.SnapshotEvery
	if every < 1 {
		every = 1
	}
	w.sinceShip += n
	if w.sinceShip < every {
		rec.commit(w)
		return nil
	}
	w.sinceShip = 0
	registerStateType(w.obj)
	snap, err := wire.BinFmt{}.Marshal(w.obj)
	if err != nil {
		// Commit even on the failure path: the caller will retry against
		// this same live copy, and without the record the retry would
		// re-execute a call whose effects this copy already has.
		rec.commit(w)
		if every == 1 {
			return fmt.Errorf("core: replicate %s: snapshot %T: %w", w.uri, w.obj, err)
		}
		return nil
	}
	w.snapMu.Lock()
	rec.commit(w)
	w.lastSnap, w.lastSeq = snap, seq
	w.snapMu.Unlock()
	return rt.shipSnapshot(w, snap, w.gen.Load(), seq, every == 1)
}

// reshipForDedup runs before a dedup hit replays a recorded reply on a
// synchronously replicated virtual object: the recorded call may have
// executed and then failed its replication ack (exactly why the retry is
// here), so the current state — which includes that call's effects and its
// dedup record — must reach a replica before the replay acknowledges it.
// Runs in the actor goroutine, so the state is quiesced. Asynchronous
// replication skips it: its documented up-to-N-calls lag already covers
// the window.
func (rt *Runtime) reshipForDedup(_ context.Context, w *ioWrapper) error {
	cfg := w.virt
	if cfg.Replicas <= 0 || cfg.SnapshotEvery > 1 {
		return nil
	}
	registerStateType(w.obj)
	snap, err := wire.BinFmt{}.Marshal(w.obj)
	if err != nil {
		return fmt.Errorf("core: replicate %s: snapshot %T: %w", w.uri, w.obj, err)
	}
	seq := w.seq.Load()
	w.snapMu.Lock()
	w.lastSnap, w.lastSeq = snap, seq
	w.snapMu.Unlock()
	return rt.shipSnapshot(w, snap, w.gen.Load(), seq, true)
}

// shipSnapshot sends one state snapshot of w — with w's dedup memory, so a
// promoted replica can recognise retries of executed calls — to the
// replica targets of its URI. Synchronous shipping requires at least one
// acknowledgement (when any target is live at all); asynchronous shipping
// fires one-way exchanges and returns immediately — a lost ship only
// widens the lag until the next one.
func (rt *Runtime) shipSnapshot(w *ioWrapper, snap []byte, gen, seq uint64, awaitAck bool) error {
	targets := rt.replicaTargets(w.uri, w.virt.Replicas)
	if len(targets) == 0 {
		if awaitAck && rt.hasPeers() {
			// Synchronous mode in a real cluster with every replica
			// candidate unreachable: this node may be the minority side of a
			// partition, and an acknowledgement here would be discarded when
			// the majority's promotion demotes this copy. Refuse the call
			// instead of acking state only this node has.
			return fmt.Errorf("core: replicate %s: no reachable replica target for seq %d", w.uri, seq)
		}
		// Single-node cluster (or asynchronous mode): proceed unreplicated
		// rather than refuse all progress.
		return nil
	}
	if !awaitAck {
		// One-way ships cannot learn what the receiver already holds, so
		// they carry the full dedup memory; they are amortised over
		// SnapshotEvery calls (or are rare failover re-ships).
		args := []any{w.class, w.uri, gen, seq, rt.cfg.NodeID, rt.Addr(), snap, w.dedup.Export(), uint64(0)}
		for _, p := range targets {
			p.om.OneWayTimeout(replicateShipTimeout, "ReplicateVirtual", nil, args...)
		}
		return nil
	}
	var wg sync.WaitGroup
	var acked atomic.Int32
	errCh := make(chan error, len(targets))
	for _, p := range targets {
		wg.Add(1)
		go func(p peer) {
			defer wg.Done()
			if err := rt.shipTo(w, p, snap, gen, seq); err != nil {
				errCh <- err
				return
			}
			acked.Add(1)
		}(p)
	}
	wg.Wait()
	if acked.Load() == 0 {
		return fmt.Errorf("core: replicate %s: no replica acknowledged seq %d: %w", w.uri, seq, <-errCh)
	}
	return nil
}

// shipTo ships one snapshot synchronously to one replica, carrying only
// the dedup records the target has not acknowledged yet. Per-call
// synchronous ships would otherwise resend the whole LRU — up to the
// per-object cap — on every call, an O(cap) tax that grows as the object
// ages. A target that cannot extend its chain (first contact, a missed
// ship, a generation change, a dropped replica) answers needFull and gets
// one full resend within the same attempt.
func (rt *Runtime) shipTo(w *ioWrapper, p peer, snap []byte, gen, seq uint64) error {
	base := w.shipAckFor(p.addr)
	recs, upTo := w.dedup.ExportSince(base)
	needFull, err := rt.invokeReplicate(p, w, snap, gen, seq, recs, base)
	if err != nil {
		return err
	}
	if needFull {
		recs, upTo = w.dedup.ExportSince(0)
		needFull, err = rt.invokeReplicate(p, w, snap, gen, seq, recs, 0)
		if err != nil {
			return err
		}
		if needFull {
			return fmt.Errorf("core: replicate %s: %s refused a full dedup resend", w.uri, p.addr)
		}
	}
	w.setShipAck(p.addr, upTo)
	return nil
}

func (rt *Runtime) invokeReplicate(p peer, w *ioWrapper, snap []byte, gen, seq uint64, recs []remoting.DedupRecord, base uint64) (bool, error) {
	cctx, cancel := context.WithTimeout(context.Background(), replicateSyncTimeout)
	defer cancel()
	res, err := p.om.InvokeCtx(cctx, "ReplicateVirtual",
		w.class, w.uri, gen, seq, rt.cfg.NodeID, rt.Addr(), snap, recs, base)
	if err != nil {
		return false, err
	}
	var needFull bool
	if aerr := wire.AssignTo(&needFull, res); aerr != nil {
		return false, aerr
	}
	return needFull, nil
}

// replicaTargets returns up to n live peers in ring order from uri's
// position, excluding this node — the owner's successors when called on
// the owner, and (crucially for reconciliation) the previous owner when
// called on a promoted host after the previous owner recovered.
func (rt *Runtime) replicaTargets(uri string, n int) []peer {
	nodes := rt.ring().walk(uri, n+1, func(node int) bool {
		return node != rt.cfg.NodeID && !rt.peerDown(node)
	})
	if len(nodes) > n {
		nodes = nodes[:n]
	}
	out := make([]peer, 0, len(nodes))
	for _, node := range nodes {
		if p, ok := rt.peerFor(node); ok && p.om != nil {
			out = append(out, p)
		}
	}
	return out
}

// replicateVirtual is the receiving half of snapshot shipping: keep the
// freshest (generation, seq) snapshot per URI — and, when this node still
// hosts the object at a lower generation than the shipper's, recognise
// that a failover promoted past us (we were the owner behind a partition)
// and demote our stale copy into a forwarding tombstone.
//
// dedupBase is the shipper's incremental-replication floor: the dedup
// records carry only entries stamped after it (dedupBase 0 means the full
// memory). A base this replica cannot extend — it has no record chain for
// this generation, or the chain has a gap from a missed ship — returns
// needFull=true WITHOUT applying, and the shipper resends in full.
func (rt *Runtime) replicateVirtual(class, uri string, gen, seq uint64, fromNode int, fromAddr string, state []byte, dedup []remoting.DedupRecord, dedupBase uint64) (needFull bool, err error) {
	if !isVirtualURI(uri) {
		return false, fmt.Errorf("core: replicate: %q is not a virtual URI", uri)
	}
	rt.actorsMu.Lock()
	hosted := rt.actors[uri] != nil
	rt.actorsMu.Unlock()
	if hosted {
		if loc, ok := rt.dirLookup(uri); ok && loc.Node == rt.cfg.NodeID && loc.Gen >= gen {
			// Our live copy is the fresher lineage. Refuse rather than ack:
			// a synchronous shipper treats the ack as "this call's state is
			// durable elsewhere", and the moved error routes its callers to
			// the copy that actually won.
			return false, &errs.MovedError{URI: uri, Node: rt.cfg.NodeID, Addr: rt.Addr(), Gen: loc.Gen}
		}
		rt.demoteStale(uri, ObjLoc{Node: fromNode, Addr: fromAddr, Gen: gen})
	}
	rt.replMu.Lock()
	defer rt.replMu.Unlock()
	if floor := rt.promised[uri]; gen < floor {
		return false, fmt.Errorf("core: replicate %s: generation %d superseded by a promotion census at %d", uri, gen, floor)
	}
	cur := rt.replicas[uri]
	if cur != nil && gen < cur.gen {
		// A fresher lineage already deposited here; acking the old owner
		// would let it acknowledge calls the cluster has moved past.
		return false, fmt.Errorf("core: replicate %s: stale snapshot generation %d (replica holds %d)", uri, gen, cur.gen)
	}
	if cur == nil || gen > cur.gen || (gen == cur.gen && seq >= cur.seq) {
		if dedupBase > 0 && (cur == nil || cur.gen != gen || cur.dedup == nil || dedupBase > cur.dedupStamp) {
			return true, nil
		}
		// The snapshot outlives this call, but state may alias the RPC
		// receive frame (zero-copy borrowing hands the frame to the
		// invoker only for the invocation's duration), so the retained
		// copy must be ours — including any []byte results inside the
		// dedup records.
		recs := copyDedupRecords(dedup)
		stamp := maxDedupStamp(recs)
		lru := remoting.NewDedupLRU(rt.dedupCap())
		if dedupBase > 0 {
			// Extending an intact chain: replay the delta into the held
			// LRU. Incoming records are in the owner's recency order, and a
			// restamped token moves to the front on Put, so eviction order
			// keeps mirroring the owner's.
			lru = cur.dedup
			stamp = max(stamp, cur.dedupStamp)
		}
		lru.Import(recs)
		rt.replicas[uri] = &replicaState{class: class, gen: gen, seq: seq,
			state: append([]byte(nil), state...), dedup: lru, dedupStamp: stamp}
	}
	return false, nil
}

func (rt *Runtime) dedupCap() int {
	if rt.cfg.DedupPerObject > 0 {
		return rt.cfg.DedupPerObject
	}
	return remoting.DefaultDedupPerObject
}

func maxDedupStamp(recs []remoting.DedupRecord) uint64 {
	var m uint64
	for _, r := range recs {
		m = max(m, r.Stamp)
	}
	return m
}

// demoteStale abandons this node's hosted copy of uri in favour of a
// strictly fresher one at to: the actor is removed and its queued calls
// failed with the forward (they would otherwise execute on state the
// cluster has already moved past), and the URI serves the same forwarding
// tombstone a migration leaves — stale proxies chase it with zero new
// client logic.
func (rt *Runtime) demoteStale(uri string, to ObjLoc) {
	mv := &errs.MovedError{URI: uri, Node: to.Node, Addr: to.Addr, Gen: to.Gen}
	rt.actorsMu.Lock()
	a := rt.actors[uri]
	if a == nil {
		rt.actorsMu.Unlock()
		return
	}
	if loc, ok := rt.dirLookup(uri); ok && loc.Node == rt.cfg.NodeID && loc.Gen >= to.Gen {
		rt.actorsMu.Unlock()
		return
	}
	delete(rt.actors, uri)
	rt.server.Republish(uri, &tombstone{mv: *mv}, func() { rt.dirDropForward(uri) })
	rt.load.Add(-1)
	rt.dirUpdate(uri, to)
	rt.actorsMu.Unlock()
	a.abort(mv)
	rt.stats.staleDemotions.Add(1)
}

// dropReplica forgets this node's passive replica of uri (the owner
// destroyed the object).
func (rt *Runtime) dropReplica(uri string) {
	rt.replMu.Lock()
	delete(rt.replicas, uri)
	rt.replMu.Unlock()
}

// dropReplicasFor clears the local passive copy of uri and tells the
// ring-successor replicas to do the same — called when a live virtual
// object is destroyed, so its replicas cannot resurrect it at the next
// owner failure. Best effort: an unreachable replica keeps its copy, the
// residual risk any decentralised destroy has.
func (rt *Runtime) dropReplicasFor(uri string) {
	rt.dropReplica(uri)
	cfg, ok := rt.virtualConfig(classOfVirtualURI(uri))
	if !ok || cfg.Replicas <= 0 {
		return
	}
	for _, p := range rt.replicaTargets(uri, cfg.Replicas) {
		p.om.OneWayTimeout(replicateShipTimeout, "DropReplica", nil, uri)
	}
}

// onPeerDown runs (async) when health grading marks a peer Down: every
// passive replica held here whose key now falls to this node — by the
// ring successor invariant, exactly the keys the dead peer owned and
// replicated here — is promoted through the ordinary single-flight
// activation path, which folds in directory knowledge, racing promotions
// on other nodes, and generation bumping.
func (rt *Runtime) onPeerDown(node int) {
	type cand struct{ uri, class string }
	var cands []cand
	rt.replMu.Lock()
	for uri, st := range rt.replicas {
		cands = append(cands, cand{uri: uri, class: st.class})
	}
	rt.replMu.Unlock()
	for _, c := range cands {
		if owner, ok := rt.ring().owner(c.uri); !ok || owner != rt.cfg.NodeID {
			continue
		}
		if loc, ok := rt.dirLookup(c.uri); ok && loc.Node != rt.cfg.NodeID && loc.Node != node && !rt.peerDown(loc.Node) {
			continue // still live on a node unaffected by this failure
		}
		ctx, cancel := context.WithTimeout(context.Background(), promoteTimeout)
		_, _ = rt.activateVirtual(ctx, c.class, c.uri) //nolint:errcheck // lazy activation redoes it on demand
		cancel()
	}
}

// onPeerUp runs (async) when a Down peer recovers. A peer that was
// partitioned away (rather than restarted) may still host stale copies of
// objects promoted past it, and it cannot know that yet. Re-shipping the
// last snapshot of every replicated virtual object hosted here makes the
// recovered node either store it as a replica or — if it still hosts the
// object at a lower generation — demote its stale copy (replicateVirtual
// does both), bounding the split-brain window to one probe recovery.
func (rt *Runtime) onPeerUp(int) {
	rt.actorsMu.Lock()
	var ws []*ioWrapper
	for uri, a := range rt.actors {
		if isVirtualURI(uri) && a.w.virt != nil && a.w.virt.Replicas > 0 {
			ws = append(ws, a.w)
		}
	}
	rt.actorsMu.Unlock()
	for _, w := range ws {
		w.snapMu.Lock()
		snap, seq := w.lastSnap, w.lastSeq
		w.snapMu.Unlock()
		if snap == nil {
			continue
		}
		_ = rt.shipSnapshot(w, snap, w.gen.Load(), seq, false) //nolint:errcheck // reconciliation is best effort
	}
}

// ActivateVirtual ensures a live instance of the virtual object uri
// exists, activating it on this node when this node owns it. The reply
// either carries the instance's location (Found) or redirects the caller
// to the owner in this node's membership view (!Found with Node/Addr
// set).
func (s *omService) ActivateVirtual(ctx context.Context, class, uri string) (ResolveReply, error) {
	return s.rt.activateVirtual(ctx, class, uri)
}

// ReplicateVirtual stores a passive state snapshot of a virtual object
// owned by a peer, together with the owner's dedup memory (full, or
// incremental past dedupBase); see Runtime.replicateVirtual.
func (s *omService) ReplicateVirtual(class, uri string, gen, seq uint64, fromNode int, fromAddr string, state []byte, dedup []remoting.DedupRecord, dedupBase uint64) (bool, error) {
	return s.rt.replicateVirtual(class, uri, gen, seq, fromNode, fromAddr, state, dedup, dedupBase)
}

// DropReplica forgets this node's passive replica of uri.
func (s *omService) DropReplica(uri string) {
	s.rt.dropReplica(uri)
}

// ReplicaAt reports this node's passive replica of uri for a promotion
// census, promising candidateGen (see Runtime.replicaAt).
func (s *omService) ReplicaAt(uri string, candidateGen uint64, fromNode int, fromAddr string) ReplicaInfo {
	return s.rt.replicaAt(uri, candidateGen, fromNode, fromAddr)
}
