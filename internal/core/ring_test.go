package core

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: two rings built from the same member set in
// different orders answer every ownership and successor query identically
// — the property that lets every node compute placement without talking
// to anyone.
func TestRingDeterminism(t *testing.T) {
	a := buildRing([]int{0, 1, 2, 3})
	b := buildRing([]int{3, 1, 0, 2})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("virtual/counter/k%d", i)
		oa, oka := a.owner(key)
		ob, okb := b.owner(key)
		if oa != ob || oka != okb {
			t.Fatalf("owner(%q) differs across build orders: %d/%v vs %d/%v", key, oa, oka, ob, okb)
		}
		sa, sb := a.successors(key, 2), b.successors(key, 2)
		if fmt.Sprint(sa) != fmt.Sprint(sb) {
			t.Fatalf("successors(%q) differ across build orders: %v vs %v", key, sa, sb)
		}
	}
}

// TestRingBalance: with virtual nodes, ownership spreads across all
// members — no member owns everything, none owns nothing.
func TestRingBalance(t *testing.T) {
	r := buildRing([]int{0, 1, 2})
	counts := map[int]int{}
	const keys = 600
	for i := 0; i < keys; i++ {
		o, ok := r.owner(fmt.Sprintf("virtual/c/key-%d", i))
		if !ok {
			t.Fatal("ring with members reported no owner")
		}
		counts[o]++
	}
	for n := 0; n < 3; n++ {
		if counts[n] == 0 {
			t.Fatalf("member %d owns no keys: %v", n, counts)
		}
		if counts[n] > keys*2/3 {
			t.Fatalf("member %d owns %d of %d keys, distribution degenerate: %v", n, counts[n], keys, counts)
		}
	}
}

// TestRingMinimalMovement: adding or removing one member only moves keys
// touching that member — keys owned by the surviving members stay put.
func TestRingMinimalMovement(t *testing.T) {
	before := buildRing([]int{0, 1, 2, 3})
	afterLeave := buildRing([]int{0, 1, 3}) // member 2 left
	afterJoin := buildRing([]int{0, 1, 2, 3, 4})
	moved := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("virtual/c/%d", i)
		ob, _ := before.owner(key)
		// Leave: only member 2's keys may change owner.
		if oa, _ := afterLeave.owner(key); ob != 2 && oa != ob {
			t.Fatalf("key %q moved %d→%d though member 2's departure should not affect it", key, ob, oa)
		}
		// Join: a key either stays put or moves to the joiner, never to a
		// third member.
		if oa, _ := afterJoin.owner(key); oa != ob {
			if oa != 4 {
				t.Fatalf("key %q moved %d→%d on member 4's join (only moves to 4 are minimal)", key, ob, oa)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key moved to the joining member; join had no effect")
	}
	if moved > 300 {
		t.Fatalf("%d of 500 keys moved on a single join; movement is not minimal", moved)
	}
}

// TestRingDownExclusion: a ring built without a down member never answers
// with it, for ownership or succession — mirroring how Runtime.ring
// builds over live members only.
func TestRingDownExclusion(t *testing.T) {
	live := buildRing([]int{0, 2}) // member 1 down
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("virtual/c/%d", i)
		if o, _ := live.owner(key); o == 1 {
			t.Fatalf("down member 1 owns key %q", key)
		}
		for _, s := range live.successors(key, 2) {
			if s == 1 {
				t.Fatalf("down member 1 among successors of %q", key)
			}
		}
	}
}

// TestRingSuccessorsSkipOwner: replica successors are distinct members in
// ring order that never include the key's owner, and the first successor
// is exactly where the key falls once the owner's points are removed —
// the invariant that makes the replica holder the failover target.
func TestRingSuccessorsSkipOwner(t *testing.T) {
	members := []int{0, 1, 2, 3}
	r := buildRing(members)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("virtual/c/%d", i)
		owner, _ := r.owner(key)
		succ := r.successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("want 3 successors among 4 members, got %v", succ)
		}
		seen := map[int]bool{owner: true}
		for _, s := range succ {
			if s == owner {
				t.Fatalf("owner %d of %q appears in its own successor list %v", owner, key, succ)
			}
			if seen[s] {
				t.Fatalf("duplicate successor in %v for %q", succ, key)
			}
			seen[s] = true
		}
		// Failover invariant: drop the owner, and the key lands on the
		// first successor.
		var survivors []int
		for _, m := range members {
			if m != owner {
				survivors = append(survivors, m)
			}
		}
		if heir, _ := buildRing(survivors).owner(key); heir != succ[0] {
			t.Fatalf("key %q: first successor %d but post-failure owner %d", key, succ[0], heir)
		}
	}
}

// TestRingEmpty: the empty ring reports no owner and no successors rather
// than panicking.
func TestRingEmpty(t *testing.T) {
	r := buildRing(nil)
	if _, ok := r.owner("virtual/c/x"); ok {
		t.Fatal("empty ring reported an owner")
	}
	if s := r.successors("virtual/c/x", 2); len(s) != 0 {
		t.Fatalf("empty ring reported successors %v", s)
	}
}
