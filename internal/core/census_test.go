package core

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/remoting"
)

// TestReplicaAtFencesAndDemotesStaleCopy: a promotion census reaching a
// node that still hosts the object at a lower generation must (1) leave a
// copy at an equal-or-higher generation alone, and (2) for a genuinely
// stale copy: fence it, report its last committed (snapshot, dedup) pair,
// deposit that pair in the local replica store, record the generation
// promise, and demote the live actor — the full containment sequence that
// makes a partitioned ex-owner safe to promote past.
func TestReplicaAtFencesAndDemotesStaleCopy(t *testing.T) {
	rts := startNodes(t, 3, nil)
	registerVirtualJournal(rts, VirtualConfig{Replicas: 1, SnapshotEvery: 1})

	p, err := rts[0].VirtualObject("vjournal", "fence0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("Append", int64(7)); err != nil {
		t.Fatal(err)
	}
	uri := VirtualURI("vjournal", "fence0")
	hosts := hostOf(rts, uri)
	if len(hosts) != 1 {
		t.Fatalf("hosted on %v, want one owner", hosts)
	}
	ownerRt := rts[hosts[0]]
	other := rts[(hosts[0]+1)%3]
	ownerRt.actorsMu.Lock()
	w := ownerRt.actors[uri].w
	ownerRt.actorsMu.Unlock()
	gen := w.gen.Load()

	// A census at the copy's own generation is not promoting past it: no
	// fence, no demotion — the copy is the lineage being confirmed.
	ownerRt.replicaAt(uri, gen, other.cfg.NodeID, other.Addr())
	if w.fenced.Load() {
		t.Fatal("census at the copy's own generation fenced it")
	}
	if hosts := hostOf(rts, uri); len(hosts) != 1 || hosts[0] != ownerRt.cfg.NodeID {
		t.Fatalf("hosted on %v after same-generation census, want the owner untouched", hosts)
	}

	// A census one generation ahead IS promoting past this copy.
	info := ownerRt.replicaAt(uri, gen+1, other.cfg.NodeID, other.Addr())
	if !info.Has || info.Gen != gen || info.Seq == 0 {
		t.Fatalf("census answer = %+v, want the live copy's snapshot at gen %d", info, gen)
	}
	if !w.fenced.Load() {
		t.Error("stale live copy not fenced by the census")
	}
	if hosts := hostOf(rts, uri); len(hosts) != 0 {
		t.Errorf("still hosted on %v, want the stale copy demoted", hosts)
	}
	ownerRt.replMu.Lock()
	st := ownerRt.replicas[uri]
	promised := ownerRt.promised[uri]
	ownerRt.replMu.Unlock()
	if st == nil || st.gen != gen {
		t.Errorf("final state not deposited locally (replica = %+v), a failed quorum would lose it", st)
	}
	if promised != gen+1 {
		t.Errorf("promised floor = %d, want %d — older lineages could still deposit", promised, gen+1)
	}
}

// TestPromiseRefusesOlderDeposits: once a census promises a candidate
// generation, snapshot deposits from any older lineage are refused — the
// acknowledgement such a deposit earns is exactly the "durable elsewhere"
// claim the promotion is about to invalidate.
func TestPromiseRefusesOlderDeposits(t *testing.T) {
	rts := startNodes(t, 2, nil)
	registerVirtualJournal(rts, VirtualConfig{Replicas: 1, SnapshotEvery: 1})
	uri := VirtualURI("vjournal", "promise0")

	if info := rts[1].replicaAt(uri, 5, 0, rts[0].Addr()); info.Has {
		t.Fatalf("census on a node with no knowledge answered %+v", info)
	}
	if _, err := rts[1].replicateVirtual("vjournal", uri, 4, 1, 0, rts[0].Addr(), []byte("old"), nil, 0); err == nil || !strings.Contains(err.Error(), "superseded") {
		t.Fatalf("deposit below the promised floor: err = %v, want a superseded refusal", err)
	}
	if _, err := rts[1].replicateVirtual("vjournal", uri, 5, 1, 0, rts[0].Addr(), []byte("new"), nil, 0); err != nil {
		t.Fatalf("deposit at the promised generation refused: %v", err)
	}
}

func drec(seq, stamp uint64) remoting.DedupRecord {
	return remoting.DedupRecord{Client: 1, Seq: seq, Stamp: stamp, Result: int(seq)}
}

// TestReplicateVirtualIncrementalChain pins the receiver half of
// incremental dedup shipping: a delta is applied only onto an intact chain
// (same generation, no stamp gap); anything else is refused with
// needFull=true and WITHOUT applying, so a missed ship can never silently
// hole the replica's dedup memory.
func TestReplicateVirtualIncrementalChain(t *testing.T) {
	rt := startNodes(t, 1, nil)[0]
	registerVirtualJournal([]*Runtime{rt}, VirtualConfig{Replicas: 1, SnapshotEvery: 1})
	uri := VirtualURI("vjournal", "chain0")
	ship := func(gen, seq uint64, recs []remoting.DedupRecord, base uint64) (bool, error) {
		return rt.replicateVirtual("vjournal", uri, gen, seq, 9, "mem://x", []byte("s"), recs, base)
	}
	replica := func() *replicaState {
		rt.replMu.Lock()
		defer rt.replMu.Unlock()
		return rt.replicas[uri]
	}

	// A delta with no replica to extend: full resend needed, nothing stored.
	if needFull, err := ship(1, 1, []remoting.DedupRecord{drec(4, 4)}, 3); err != nil || !needFull {
		t.Fatalf("delta onto empty replica = (needFull %v, err %v), want (true, nil)", needFull, err)
	}
	if replica() != nil {
		t.Fatal("refused delta was applied anyway")
	}

	// Full ship: applied, chain established at stamp 3.
	if needFull, err := ship(1, 1, []remoting.DedupRecord{drec(1, 1), drec(2, 2), drec(3, 3)}, 0); err != nil || needFull {
		t.Fatalf("full ship = (needFull %v, err %v), want (false, nil)", needFull, err)
	}
	if st := replica(); st == nil || st.dedupStamp != 3 || st.dedup.Len() != 3 {
		t.Fatalf("after full ship: %+v, want dedupStamp 3 with 3 records", st)
	}

	// A gap (base 8 ahead of the held stamp 3): refused, chain untouched.
	if needFull, err := ship(1, 2, []remoting.DedupRecord{drec(9, 9)}, 8); err != nil || !needFull {
		t.Fatalf("gapped delta = (needFull %v, err %v), want (true, nil)", needFull, err)
	}
	if st := replica(); st.seq != 1 || st.dedupStamp != 3 {
		t.Fatalf("gapped delta mutated the replica: %+v", st)
	}

	// An intact extension: applied on top, stamp advances.
	if needFull, err := ship(1, 2, []remoting.DedupRecord{drec(4, 4), drec(5, 5)}, 3); err != nil || needFull {
		t.Fatalf("chain extension = (needFull %v, err %v), want (false, nil)", needFull, err)
	}
	if st := replica(); st.seq != 2 || st.dedupStamp != 5 || st.dedup.Len() != 5 {
		t.Fatalf("after extension: %+v, want seq 2, dedupStamp 5, 5 records", st)
	}

	// A delta from a NEW generation cannot extend the old chain.
	if needFull, err := ship(2, 1, []remoting.DedupRecord{drec(6, 6)}, 5); err != nil || !needFull {
		t.Fatalf("cross-generation delta = (needFull %v, err %v), want (true, nil)", needFull, err)
	}
	if needFull, err := ship(2, 1, []remoting.DedupRecord{drec(6, 6)}, 0); err != nil || needFull {
		t.Fatalf("full resend at new generation = (needFull %v, err %v), want (false, nil)", needFull, err)
	}

	// A stale generation's ship is an error, not a needFull: the shipper
	// must learn it lost, not resend harder.
	if _, err := ship(1, 3, nil, 0); err == nil || !strings.Contains(err.Error(), "stale snapshot") {
		t.Fatalf("stale-generation ship: err = %v, want a stale refusal", err)
	}
}

// TestClusterCloseReapsRetryingCallers: Runtime.Close during in-flight
// retries must wake every caller sleeping in backoff (via the channel's
// close broadcast) and leave no goroutines behind — a teardown that
// strands callers leaks one goroutine per pending retry for the rest of
// its backoff.
func TestClusterCloseReapsRetryingCallers(t *testing.T) {
	base := runtime.NumGoroutine()
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Channel.Retry = remoting.RetryPolicy{
			MaxAttempts: 1000, BaseDelay: 10 * time.Second, Jitter: -1}
	})
	ref := remoting.NewObjRef(rts[0].cfg.Channel, "mem://nowhere", "obj")
	const callers = 8
	done := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := ref.InvokeCtx(context.Background(), "Ping")
			done <- err
		}()
	}
	time.Sleep(100 * time.Millisecond) // let every caller fail its dial and enter backoff

	rts[0].Close()
	deadline := time.After(3 * time.Second)
	for i := 0; i < callers; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Error("invoke against an unreachable peer succeeded")
			}
		case <-deadline:
			t.Fatalf("%d callers still sleeping in retry backoff after Runtime.Close", callers-i)
		}
	}

	rts[1].Close()
	settleBy := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+3 {
			break
		} else if time.Now().After(settleBy) {
			t.Fatalf("goroutines %d, want back near baseline %d after closing the cluster", n, base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
