package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/errs"
	"repro/internal/wire"
)

// ObjLoc is one object-directory entry: the node currently hosting a
// parallel object and the migration generation that information was
// observed at. Generations start at 1 when an object is created and are
// bumped on every migration, so stale entries (and stale forwards) are
// recognisable: an entry never overwrites one with a higher generation.
type ObjLoc struct {
	Node int
	Addr string
	Gen  uint64
}

// ResolveReply is the object manager's answer to a directory lookup.
type ResolveReply struct {
	Found bool
	Node  int
	Addr  string
	Gen   uint64
}

func init() {
	wire.RegisterName("core.ResolveReply", ResolveReply{})
}

// resolveProbeTimeout bounds one peer directory lookup during failover
// re-resolution, so a second dead peer cannot stall the retry path.
const resolveProbeTimeout = 300 * time.Millisecond

// dirLookup returns this node's directory entry for uri: authoritative for
// objects hosted here and for tombstones left by migrations away, a cache
// for remote objects this node has routed to.
func (rt *Runtime) dirLookup(uri string) (ObjLoc, bool) {
	rt.dirMu.Lock()
	defer rt.dirMu.Unlock()
	loc, ok := rt.dir[uri]
	return loc, ok
}

// dirUpdate merges a location into the directory, keeping the entry with
// the highest generation (ties keep the newcomer: same generation means
// same location).
func (rt *Runtime) dirUpdate(uri string, loc ObjLoc) {
	rt.dirMu.Lock()
	if cur, ok := rt.dir[uri]; !ok || loc.Gen >= cur.Gen {
		rt.dir[uri] = loc
	}
	rt.dirMu.Unlock()
}

// dirDrop forgets uri.
func (rt *Runtime) dirDrop(uri string) {
	rt.dirMu.Lock()
	delete(rt.dir, uri)
	rt.dirMu.Unlock()
}

// dirDropForward forgets uri only while it points away from this node —
// the tombstone-expiry cleanup, which must not discard the entry of an
// object that has since migrated back here.
func (rt *Runtime) dirDropForward(uri string) {
	rt.dirMu.Lock()
	if loc, ok := rt.dir[uri]; ok && loc.Node != rt.cfg.NodeID {
		delete(rt.dir, uri)
	}
	rt.dirMu.Unlock()
}

// Lookup reports this node's best knowledge of where uri lives. It is the
// observability companion of the proxies' internal routing: hosted objects
// report this node, tombstones report the forward target.
func (rt *Runtime) Lookup(uri string) (ObjLoc, bool) { return rt.dirLookup(uri) }

// resolveRemote finds the current location of uri for failover: first the
// local directory cache, then every reachable peer's object manager,
// probed concurrently with a short per-probe deadline. excludeAddr is the
// address that just failed — cached or reported entries still pointing at
// it are useless and are skipped. The best (highest-generation) answer
// wins and is cached.
func (rt *Runtime) resolveRemote(ctx context.Context, uri, excludeAddr string) (ObjLoc, bool) {
	if loc, ok := rt.dirLookup(uri); ok && loc.Addr != excludeAddr {
		return loc, true
	}
	var mu sync.Mutex
	var best ObjLoc
	ok := false
	rt.forEachPeer(ctx, resolveProbeTimeout, true, func(pctx context.Context, p peer) {
		if p.addr == excludeAddr {
			return
		}
		res, err := p.om.InvokeCtx(pctx, "Resolve", uri)
		if err != nil {
			return
		}
		var rr ResolveReply
		if err := wire.AssignTo(&rr, res); err != nil || !rr.Found || rr.Addr == excludeAddr {
			return
		}
		mu.Lock()
		if !ok || rr.Gen > best.Gen {
			best, ok = ObjLoc{Node: rr.Node, Addr: rr.Addr, Gen: rr.Gen}, true
		}
		mu.Unlock()
	})
	if ok {
		rt.dirUpdate(uri, best)
	}
	return best, ok
}

// tombstone is the forwarding endpoint a migration leaves behind at the
// moved object's URI: every invocation fails with the *errs.MovedError
// carrying the new location, which proxies consume to re-route and retry
// transparently. It is published through the server's ordinary
// registration path, so the registration-generation bump invalidates bound
// call handles cached against the old actor endpoint — their next call
// re-resolves to the tombstone and observes the forward.
type tombstone struct {
	mv errs.MovedError
}

// Invoke1 rejects a single invocation with the forward.
func (t *tombstone) Invoke1(ctx context.Context, method string, args []any) (any, error) {
	return nil, &t.mv
}

// InvokeBatch rejects an aggregate message with the forward. Enqueue-time
// rejection means no element of the batch executed; the caller replays the
// whole batch at the new location.
func (t *tombstone) InvokeBatch(ctx context.Context, method string, calls []any) (int, error) {
	return 0, &t.mv
}
