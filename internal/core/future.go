package core

import (
	"context"
	"fmt"
	"sync"
)

// maxInlineDepth bounds how many continuation frames run nested on one
// completion delivery before the chain hops to the overflow executor. The
// bound keeps completion-path latency predictable and the stack shallow: a
// reply that resolves a Then chain runs the first few links inline on the
// mux reader and ships the rest elsewhere.
const maxInlineDepth = 8

// futureSub is one registered continuation. depth counts the inline
// continuation frames already below it on the delivering stack.
type futureSub func(val any, err error, depth int)

// Future is the handle of an asynchronous call with a result. It is a
// completion-driven promise: the party that resolves it (the mux reader on
// reply arrival, for remote calls) runs the registered continuations
// directly — a pending future parks no goroutine, and ten thousand
// outstanding calls cost ten thousand heap objects, not ten thousand
// stacks. Waiting (Get) lazily materialises a done channel; chaining
// (ThenAny / OnComplete) does not.
type Future struct {
	// exec runs continuations that overflowed the inline depth bound; nil
	// means a fresh goroutine. Inherited by derived futures.
	exec func(func())

	mu        sync.Mutex
	completed bool
	val       any
	err       error
	done      chan struct{} // lazily created; closed on completion
	subs      []futureSub
}

// NewPromise returns an unresolved Future and its resolver. The resolver
// completes the future exactly once (later calls are ignored) and runs the
// registered continuations on the calling goroutine, up to the inline
// depth bound. It is the building block of the parc combinators.
func NewPromise() (*Future, func(any, error)) {
	f := &Future{}
	return f, f.complete
}

// ResolvedFuture returns a future already completed with (v, err).
func ResolvedFuture(v any, err error) *Future {
	return &Future{completed: true, val: v, err: err}
}

// complete resolves the future at depth 0.
func (f *Future) complete(v any, err error) { f.completeAt(v, err, 0) }

// completeAt resolves the future and delivers to every registered
// continuation, threading the inline-depth budget through the chain. First
// completion wins; the rest are no-ops (a future fed by both a reply and a
// cancellation hook needs exactly this).
func (f *Future) completeAt(v any, err error, depth int) {
	f.mu.Lock()
	if f.completed {
		f.mu.Unlock()
		return
	}
	f.completed = true
	f.val, f.err = v, err
	subs := f.subs
	f.subs = nil
	done := f.done
	f.mu.Unlock()
	if done != nil {
		close(done)
	}
	for _, s := range subs {
		f.runSub(s, depth)
	}
}

// runSub invokes one continuation: inline while the depth budget lasts,
// otherwise on the overflow executor (the runtime's thread pool when one
// is configured and has room, a fresh goroutine otherwise).
func (f *Future) runSub(s futureSub, depth int) {
	if depth < maxInlineDepth {
		s(f.val, f.err, depth)
		return
	}
	v, err := f.val, f.err
	hop := func() { s(v, err, 0) }
	if f.exec != nil {
		f.exec(hop)
		return
	}
	go hop()
}

// subscribe registers a continuation, running it immediately (depth 0, on
// the caller) when the future is already resolved — Then after completion
// behaves exactly like Then before it.
func (f *Future) subscribe(s futureSub) {
	f.mu.Lock()
	if !f.completed {
		f.subs = append(f.subs, s)
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	f.runSub(s, 0)
}

// OnComplete registers fn to run with the future's outcome: immediately if
// already resolved, on the completion path otherwise. fn must not block —
// for remote calls the completion path is the connection's reader
// goroutine, shared by every caller on that lane.
func (f *Future) OnComplete(fn func(any, error)) {
	f.subscribe(func(v any, err error, _ int) { fn(v, err) })
}

// ThenAny returns a future resolved by fn applied to this future's
// outcome. fn runs on the completion path (bounded inline depth, overflow
// to the pool); a panic inside it resolves the derived future with an
// error instead of unwinding the deliverer. Typed chaining lives in the
// parc package (Then / Catch); this is their dynamically typed engine.
func (f *Future) ThenAny(fn func(any, error) (any, error)) *Future {
	child := &Future{exec: f.exec}
	f.subscribe(func(v any, err error, depth int) {
		cv, cerr := runContinuation(fn, v, err)
		child.completeAt(cv, cerr, depth+1)
	})
	return child
}

// runContinuation applies fn with panic containment: the deliverer (a
// shared reader goroutine) must survive any user continuation.
func runContinuation(fn func(any, error) (any, error), v any, err error) (rv any, rerr error) {
	defer func() {
		if p := recover(); p != nil {
			rerr = fmt.Errorf("core: continuation panic: %v", p)
		}
	}()
	return fn(v, err)
}

// Done returns a channel closed on completion.
func (f *Future) Done() <-chan struct{} {
	f.mu.Lock()
	if f.done == nil {
		f.done = make(chan struct{})
		if f.completed {
			close(f.done)
		}
	}
	d := f.done
	f.mu.Unlock()
	return d
}

// Get blocks until the call completes.
func (f *Future) Get() (any, error) {
	f.mu.Lock()
	if f.completed {
		v, err := f.val, f.err
		f.mu.Unlock()
		return v, err
	}
	f.mu.Unlock()
	<-f.Done()
	// The close happens after val/err were written under mu, so this read
	// is ordered after them.
	return f.val, f.err
}

// GetCtx blocks until the call completes or ctx ends, in which case it
// returns ctx.Err() (the call itself keeps running; a later Get still
// observes its outcome).
func (f *Future) GetCtx(ctx context.Context) (any, error) {
	if ctx == nil || ctx.Done() == nil {
		return f.Get()
	}
	select {
	case <-f.Done():
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
