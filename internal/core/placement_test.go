package core

import (
	"context"
	"testing"
	"time"
)

// TestRoundRobinWraparound: the cycle visits every node in order and wraps
// back to the first, including across many laps.
func TestRoundRobinWraparound(t *testing.T) {
	loads := []NodeLoad{{Node: 0}, {Node: 1}, {Node: 2}}
	rr := &RoundRobin{}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := rr.Pick(0, loads); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
	// Wraparound survives the vector shrinking (a peer going down mid
	// cycle): picks stay within the remaining nodes.
	loads = loads[:2]
	for i := 0; i < 10; i++ {
		if got := rr.Pick(0, loads); got != 0 && got != 1 {
			t.Fatalf("shrunken vector pick = %d", got)
		}
	}
	if (&RoundRobin{}).Pick(3, nil) != 3 {
		t.Error("empty vector must fall back to self")
	}
}

// TestLeastLoadedTieBreaksTowardSelf: equal minimum loads keep the object
// on the creating node regardless of vector order.
func TestLeastLoadedTieBreaksTowardSelf(t *testing.T) {
	for _, loads := range [][]NodeLoad{
		{{Node: 0, Load: 2}, {Node: 1, Load: 2}, {Node: 2, Load: 5}},
		{{Node: 2, Load: 5}, {Node: 1, Load: 2}, {Node: 0, Load: 2}},
	} {
		if got := (LeastLoaded{}).Pick(1, loads); got != 1 {
			t.Errorf("tie over %v broke to %d, want self 1", loads, got)
		}
	}
	// A strictly smaller load still wins over self.
	loads := []NodeLoad{{Node: 0, Load: 1}, {Node: 1, Load: 2}}
	if got := (LeastLoaded{}).Pick(1, loads); got != 0 {
		t.Errorf("least-loaded pick = %d, want 0", got)
	}
}

// TestLoadCacheTTLRefresh: placement sees a stale load vector for at most
// LoadCacheTTL — after the TTL a refresh observes the peers' new loads.
func TestLoadCacheTTLRefresh(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = LeastLoaded{}
		cfg.LoadCacheTTL = 20 * time.Millisecond
	})
	// Prime node 0's cache: both nodes empty.
	loads := rts[0].nodeLoads()
	if len(loads) != 2 {
		t.Fatalf("load vector %v, want 2 entries", loads)
	}
	// Load up node 1 behind node 0's back.
	for i := 0; i < 3; i++ {
		if _, err := rts[1].NewParallelObject("counter"); err != nil {
			t.Fatal(err)
		}
	}
	// Within the TTL the stale vector may persist; after it the refresh
	// must see node 1's new load.
	deadline := time.Now().Add(2 * time.Second)
	for {
		var n1 int
		for _, l := range rts[0].nodeLoads() {
			if l.Node == 1 {
				n1 = l.Load
			}
		}
		if n1 == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 1 load never refreshed past the TTL (saw %d)", n1)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNodeLoadsExcludesUnreachablePeer: a peer that cannot be probed is
// excluded from the load vector rather than reported at max-int, so no
// placement policy can pick it.
func TestNodeLoadsExcludesUnreachablePeer(t *testing.T) {
	rts := startNodes(t, 3, func(i int, cfg *Config) {
		cfg.LoadCacheTTL = time.Millisecond
	})
	rts[2].Close()
	time.Sleep(2 * time.Millisecond) // let the cache expire
	loads := rts[0].nodeLoads()
	if len(loads) != 2 {
		t.Fatalf("load vector %v, want dead node 2 excluded", loads)
	}
	for _, l := range loads {
		if l.Node == 2 {
			t.Errorf("dead node 2 still in vector: %v", loads)
		}
		if l.Load > 1000 {
			t.Errorf("max-int sentinel load leaked into vector: %v", loads)
		}
	}
	// Creations keep succeeding, never targeting the dead node.
	for i := 0; i < 6; i++ {
		if _, err := rts[0].NewParallelObject("counter"); err != nil {
			t.Fatalf("creation %d with a dead peer: %v", i, err)
		}
	}
}

// TestHealthProbesMarkDownAndRecover: consecutive probe failures grade a
// peer suspect then down; a successful probe restores it.
func TestHealthProbesMarkDownAndRecover(t *testing.T) {
	rts := startNodes(t, 2, nil)
	if st := rts[0].PeerStatusOf(1); st != PeerAlive {
		t.Fatalf("initial status = %v", st)
	}
	rts[1].Close()
	for i := 0; i < peerDownAfter; i++ {
		rts[0].ProbePeers()
		if i == 0 {
			if st := rts[0].PeerStatusOf(1); st != PeerSuspect {
				t.Errorf("after 1 failure: %v, want suspect", st)
			}
		}
	}
	if st := rts[0].PeerStatusOf(1); st != PeerDown {
		t.Errorf("after %d failures: %v, want down", peerDownAfter, st)
	}
	statuses := rts[0].PeerStatuses()
	if statuses[1] != PeerDown || statuses[0] != PeerAlive {
		t.Errorf("statuses = %v", statuses)
	}
	// Down peers are excluded from the load vector even before any probe
	// timeout would strike.
	loads := rts[0].probeLoads()
	for _, l := range loads {
		if l.Node == 1 {
			t.Errorf("down peer in load vector: %v", loads)
		}
	}
}

// TestHealthLoopExcludesDownNodeFromPlacement: with probing enabled, a
// killed node is discovered and placement stops considering it without
// paying per-placement probe timeouts.
func TestHealthLoopExcludesDownNodeFromPlacement(t *testing.T) {
	rts := startNodes(t, 3, func(i int, cfg *Config) {
		cfg.HealthProbe = 5 * time.Millisecond
		cfg.LoadCacheTTL = time.Millisecond
	})
	rts[2].Close()
	deadline := time.Now().Add(2 * time.Second)
	for rts[0].PeerStatusOf(2) != PeerDown {
		if time.Now().After(deadline) {
			t.Fatal("health loop never marked the dead peer down")
		}
		time.Sleep(2 * time.Millisecond)
	}
	loads := rts[0].nodeLoads()
	for _, l := range loads {
		if l.Node == 2 {
			t.Errorf("down peer in placement vector: %v", loads)
		}
	}
}

// TestRebalanceSpreadsLoad: an overloaded node migrates objects toward the
// policy's picks until it sits at the cluster mean; every object stays
// callable afterwards.
func TestRebalanceSpreadsLoad(t *testing.T) {
	rts := startNodes(t, 3, func(i int, cfg *Config) {
		cfg.Placement = LeastLoaded{}
		// A long TTL pins the all-zero load vector probed at the first
		// creation, so LeastLoaded's self tie-break keeps all 12 objects
		// on node 1 no matter how slowly the loop runs; Rebalance itself
		// probes fresh loads, bypassing this cache.
		cfg.LoadCacheTTL = time.Minute
	})
	registerJournal(rts)
	proxies := make([]*Proxy, 12)
	for i := range proxies {
		p, err := rts[1].NewParallelObject("journal") // LocalOnly via LeastLoaded ties: all start on node 1
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = p
		if _, err := p.Invoke("Append", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if rts[1].Load() != 12 {
		t.Fatalf("node 1 load = %d before rebalance", rts[1].Load())
	}
	moved, err := rts[1].Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if moved != 8 {
		t.Errorf("rebalance moved %d objects, want 8 (12 down to the mean of 4)", moved)
	}
	if l := rts[1].Load(); l != 4 {
		t.Errorf("node 1 load after rebalance = %d, want 4", l)
	}
	if rts[0].Load()+rts[2].Load() != 8 {
		t.Errorf("moved objects unaccounted: node0=%d node2=%d", rts[0].Load(), rts[2].Load())
	}
	for i, p := range proxies {
		got, err := p.Invoke("Len")
		if err != nil {
			t.Fatalf("object %d after rebalance: %v", i, err)
		}
		if got != 1 {
			t.Errorf("object %d lost state: Len = %v", i, got)
		}
	}
}

// TestRebalanceAvoidsLoadedPeers: with the load-blind RoundRobin policy,
// a rebalance must still ship objects only to peers below the cluster
// mean — relocating the overload onto an equally loaded peer would churn
// objects back and forth forever.
func TestRebalanceAvoidsLoadedPeers(t *testing.T) {
	rts := startNodes(t, 3, func(i int, cfg *Config) {
		cfg.Placement = LocalOnly{}
		cfg.LoadCacheTTL = time.Millisecond
	})
	registerJournal(rts)
	for i := 0; i < 12; i++ {
		if _, err := rts[0].NewParallelObject("journal"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		if _, err := rts[1].NewParallelObject("journal"); err != nil {
			t.Fatal(err)
		}
	}
	// Loads [12, 12, 0]: node 0's excess must land on node 2 only.
	moved, err := rts[0].Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("rebalance moved nothing")
	}
	if got := rts[1].Load(); got != 12 {
		t.Errorf("rebalance shipped objects to an equally loaded peer: node 1 load = %d", got)
	}
	if got := rts[2].Load(); got != moved {
		t.Errorf("node 2 load = %d, want %d", got, moved)
	}
}

// TestDrainEmptiesNode: Drain migrates everything off, the graceful
// pre-shutdown step.
func TestDrainEmptiesNode(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = LocalOnly{}
		cfg.LoadCacheTTL = time.Millisecond
	})
	registerJournal(rts)
	var proxies []*Proxy
	for i := 0; i < 5; i++ {
		p, err := rts[0].NewParallelObject("journal")
		if err != nil {
			t.Fatal(err)
		}
		proxies = append(proxies, p)
	}
	moved, err := rts[0].Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if moved != 5 || rts[0].Load() != 0 || rts[1].Load() != 5 {
		t.Errorf("drain moved %d; loads node0=%d node1=%d", moved, rts[0].Load(), rts[1].Load())
	}
	for i, p := range proxies {
		if _, err := p.Invoke("Len"); err != nil {
			t.Errorf("object %d after drain: %v", i, err)
		}
	}
}
