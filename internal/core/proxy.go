package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errs"
	"repro/internal/remoting"
	"repro/internal/wire"
)

// proxyMode distinguishes the three call paths of the RTS.
type proxyMode int

const (
	// modeAgglomerated: object packed into the creator's grain; calls
	// execute synchronously and serially in the caller (Fig. 3 call b
	// after a call-d creation).
	modeAgglomerated proxyMode = iota
	// modeLocalActive: object on this node with its own thread of
	// control (mailbox).
	modeLocalActive
	// modeRemote: object on another node, reached through remoting
	// (Fig. 3 calls a).
	modeRemote
)

// Proxy is the PO of the paper: it has the same interface role as the
// object it represents (dynamically, via method names) and transparently
// forwards invocations to the implementation object, applying grain-size
// adaptations on the way.
//
// Location is resolved through the runtime's object directory rather than
// burned in at creation: when the object live-migrates, remote calls that
// hit the forwarding tombstone (or a dead node) transparently re-route and
// retry once, and a local proxy whose object moved away upgrades itself to
// a remote proxy at the new location. Per-object call ordering survives
// the move because the ordered asynchronous lane re-resolves between
// calls, never dropping or reordering its queue.
type Proxy struct {
	rt    *Runtime
	class string
	uri   string

	// mu guards the location state: mode (modeLocalActive can become
	// modeRemote after a migration), the local actor, and the remote
	// endpoint (address + directory generation + lazily built ObjRef).
	mu      sync.Mutex
	mode    proxyMode
	local   any    // agglomerated IO (immutable once set)
	act     *actor // local active IO while hosted on this node
	netaddr string // remote endpoint address
	gen     uint64 // directory generation netaddr was learned at
	ref     *remoting.ObjRef

	seq *remoting.CallSequencer // ordered async lane for remote calls

	// aggregation state (remote mode only)
	aggMu     sync.Mutex
	aggMethod string
	aggCalls  []any
	aggTimer  *time.Timer

	errMu   sync.Mutex
	asyncEr error

	// deadEndAt (unix nanoseconds, 0 = unset) caches a failed
	// destroyed-object re-resolution: after a call got
	// ErrObjectDestroyed and the cluster-wide resolve found nothing
	// fresher, later calls surface the error immediately instead of
	// paying the peer fan-out again — but only for deadEndTTL, so a
	// resolution that failed transiently (target briefly down or slow)
	// is retried rather than pinning the proxy dead forever. Cleared
	// whenever the proxy is redirected.
	deadEndAt atomic.Int64
}

// deadEndTTL bounds how long a failed destroyed-object resolution is
// trusted before the next call re-probes the cluster.
const deadEndTTL = 5 * time.Second

// newRemoteProxy builds a remote-mode proxy routed at addr/gen.
func newRemoteProxy(rt *Runtime, class, uri, addr string, gen uint64) *Proxy {
	p := &Proxy{rt: rt, class: class, mode: modeRemote, uri: uri, netaddr: addr, gen: gen}
	p.initSeq()
	return p
}

// initSeq installs the ordered asynchronous lane. The sequencer invokes
// through invokeRemote, so every queued call re-resolves the endpoint —
// that is what keeps one proxy's post stream ordered across a migration.
func (p *Proxy) initSeq() {
	p.seq = remoting.NewCallSequencerFunc(func(method string, args ...any) (any, error) {
		return p.invokeRemote(context.Background(), method, args...)
	})
	p.seq.OnError = p.noteAsyncError
	// The completion-path variant: queued calls chain head-to-tail on reply
	// arrival instead of parking a flusher goroutine per drain. A false
	// return (non-multiplexed channel, connection not yet usable, lane shut
	// down) sends that call through the synchronous invoke above, which
	// carries the full re-routing machinery.
	p.seq.SetInvokeAsync(func(method string, args []any, cb func(any, error)) bool {
		if p.rt.cfg.Channel.Kind() != remoting.Multiplexed {
			return false
		}
		ctx := context.Background()
		if p.rt.cfg.IdempotentCalls {
			ctx = remoting.ContextWithToken(ctx, p.rt.cfg.Channel.NewCallToken())
		}
		err := p.endpoint().InvokeAsyncCb(ctx, method, args, func(v any, err error) {
			if err != nil && p.asyncRecoverable(err) {
				// Same transparent re-routing the synchronous lane gives a
				// migrated or failed-over object, off the completion path.
				// The next queued call is only submitted once cb runs, so
				// the retry preserves per-proxy order.
				go func() { cb(p.invokeVia(ctx, p.endpoint, method, args...)) }()
				return
			}
			cb(v, err)
		})
		return err == nil
	})
}

// Class returns the object's registered class name.
func (p *Proxy) Class() string { return p.class }

// URI returns the object's published URI.
func (p *Proxy) URI() string { return p.uri }

// IsLocal reports whether calls currently execute on this node.
func (p *Proxy) IsLocal() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mode != modeRemote
}

// IsAgglomerated reports whether the object was packed into its creator's
// grain (parallelism removed).
func (p *Proxy) IsAgglomerated() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mode == modeAgglomerated
}

// Ref returns a wire-encodable reference that other nodes can Attach,
// stamped with the location generation this proxy currently routes at.
// Local-mode proxies (which do not track a location of their own) stamp
// the runtime directory's entry wholesale — address and generation as one
// pair, so a handle whose object has already migrated away mints a ref to
// the forward target, never the poisoned combination of the old address
// with the new generation.
func (p *Proxy) Ref() ProxyRef {
	p.mu.Lock()
	addr, gen := p.netaddr, p.gen
	p.mu.Unlock()
	if gen == 0 {
		if loc, ok := p.rt.dirLookup(p.uri); ok {
			addr, gen = loc.Addr, loc.Gen
		}
	}
	if addr == "" {
		addr = p.rt.Addr()
	}
	return ProxyRef{NetAddr: addr, URI: p.uri, Class: p.class, Gen: gen}
}

// state snapshots the location fields.
func (p *Proxy) state() (proxyMode, *actor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mode, p.act
}

// endpoint returns the current remote ObjRef, building it on first use
// after a redirect.
func (p *Proxy) endpoint() *remoting.ObjRef {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ref == nil {
		p.ref = remoting.NewObjRef(p.rt.cfg.Channel, p.netaddr, p.uri)
	}
	return p.ref
}

// redirect routes the proxy at a new location, upgrading a local proxy to
// remote mode, and reports whether it applied. A forward older than what
// the proxy already routes at is ignored (generations are monotonic per
// object).
//
// An object that migrates onto this very node is deliberately still
// reached through remoting (a loopback hop): flipping an in-use proxy
// back to mailbox mode could reorder calls already queued on its remote
// lane against new local posts. Fresh local handles come from Attach,
// which does bind to the local actor.
func (p *Proxy) redirect(loc ObjLoc) bool {
	p.rt.dirUpdate(p.uri, loc)
	p.deadEndAt.Store(0)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mode == modeRemote && loc.Gen < p.gen {
		return false
	}
	p.mode = modeRemote
	p.act = nil
	p.netaddr, p.gen = loc.Addr, loc.Gen
	p.ref = nil
	if p.seq == nil {
		// Upgraded from a local proxy that never needed the lane.
		p.initSeq()
	}
	return true
}

// sequencer returns the async lane, which exists for every proxy that has
// ever been remote.
func (p *Proxy) sequencer() *remoting.CallSequencer {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// movedOf extracts a usable migration forward for uri from err. The URI
// match is essential: a MovedError about some *other* object — one
// propagated unhandled out of a method that itself called a moved/broken
// proxy — must not re-route (and re-execute) this object's calls, nor
// poison the directory under this object's URI.
func movedOf(err error, uri string) (*errs.MovedError, bool) {
	var mv *errs.MovedError
	if errors.As(err, &mv) && mv.Addr != "" && mv.URI == uri {
		return mv, true
	}
	return nil, false
}

// invokeVia performs one invocation against the proxy's current location
// with transparent re-routing — the single retry loop shared by data
// calls and object-manager calls. On ErrObjectMoved the forward carried by
// the reply is installed and the call retried at the new location; on
// ErrNodeDown — or ErrObjectDestroyed from a node whose forwarding
// tombstone was already garbage-collected, recognisable by a peer knowing
// a strictly fresher location — the object is re-resolved through the
// surviving peers' object managers and the call retried there (once). A
// single migration therefore costs a caller at most one transparent
// retry; a proxy that went stale across several migrations follows the
// tombstone chain, which terminates because every forward must carry a
// strictly higher generation — a forward that does not advance surfaces
// the error instead of looping. mkRef builds the ref to invoke from the
// proxy's current routing state, so each iteration targets the freshly
// redirected location.
//
// The ErrNodeDown retry shares the channel's documented at-most-once
// caveat: a connection that dies after the request executed but before
// the reply arrived is indistinguishable from one that died before
// execution, so re-routing such a call can execute it a second time —
// at-least-once traded for liveness across node failures, exactly as the
// channel itself trades on its stale-connection retry. Forward-driven
// retries (ErrObjectMoved) carry no such risk: a tombstone rejects
// without executing.
func (p *Proxy) invokeVia(ctx context.Context, mkRef func() *remoting.ObjRef, method string, args ...any) (any, error) {
	if p.rt.cfg.IdempotentCalls {
		if _, ok := remoting.TokenFromContext(ctx); !ok {
			// One token per logical call, stamped at the outermost scope:
			// every wire attempt below — channel-level retries, forward
			// chasing, the post-failover re-resolve — carries it, so a host
			// that already executed the call replays its recorded reply.
			ctx = remoting.ContextWithToken(ctx, p.rt.cfg.Channel.NewCallToken())
		}
	}
	var followedGen uint64
	resolved := false
	for {
		ref := mkRef()
		res, err := ref.InvokeCtx(ctx, method, args...)
		if err == nil || ctx.Err() != nil {
			return res, err
		}
		if mv, ok := movedOf(err, p.uri); ok && mv.Gen > followedGen {
			followedGen = mv.Gen
			p.redirect(ObjLoc{Node: mv.Node, Addr: mv.Addr, Gen: mv.Gen})
			continue
		}
		down := errors.Is(err, errs.ErrNodeDown)
		if (down || errors.Is(err, errs.ErrObjectDestroyed)) && !resolved {
			resolved = true
			if at := p.deadEndAt.Load(); !down && at != 0 && time.Since(time.Unix(0, at)) < deadEndTTL {
				return nil, err
			}
			// The retry must actually change the route: a resolution
			// older than what the proxy already routes at (redirect
			// refuses it) would just re-dial the same dead endpoint for
			// a second full timeout.
			if loc, ok := p.rt.resolveRemote(ctx, p.uri, ref.NetAddr()); ok && (down || loc.Gen > p.currentGen()) && p.redirect(loc) {
				continue
			}
			if !down {
				p.deadEndAt.Store(time.Now().UnixNano())
			}
		}
		return nil, err
	}
}

// currentGen reads the generation the proxy currently routes at.
func (p *Proxy) currentGen() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen
}

// invokeRemote is invokeVia against the object's endpoint.
func (p *Proxy) invokeRemote(ctx context.Context, rmethod string, args ...any) (any, error) {
	return p.invokeVia(ctx, p.endpoint, rmethod, args...)
}

// noteAsyncError records the first asynchronous failure for AsyncErr.
func (p *Proxy) noteAsyncError(err error) {
	p.errMu.Lock()
	if p.asyncEr == nil {
		p.asyncEr = err
	}
	p.errMu.Unlock()
}

// AsyncErr returns the first error produced by an asynchronous call, if
// any. Call after Flush/Wait to check a stream of Posts.
func (p *Proxy) AsyncErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.asyncEr
}

// Invoke performs a synchronous method call (the paper's "synchronous
// method calls (when a value is returned)"). It is ordered after all
// previously posted asynchronous calls on this proxy.
func (p *Proxy) Invoke(method string, args ...any) (any, error) {
	return p.InvokeCtx(context.Background(), method, args...)
}

// InvokeCtx is Invoke bounded by ctx: cancellation aborts the in-flight
// exchange (or the mailbox wait, for local objects) and the deadline
// travels to the hosting node. It is ordered after all previously posted
// asynchronous calls on this proxy.
func (p *Proxy) InvokeCtx(ctx context.Context, method string, args ...any) (any, error) {
	p.rt.stats.syncCalls.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	switch mode, act := p.state(); mode {
	case modeAgglomerated:
		w := &ioWrapper{rt: p.rt, class: p.class, obj: p.local}
		return w.Invoke1(ctx, method, args)
	case modeLocalActive:
		res, err := act.callCtx(ctx, method, args)
		if mv, ok := movedOf(err, p.uri); ok {
			// The object migrated away while this proxy still held its
			// mailbox: upgrade to a remote proxy and retry at the new
			// location (the mailbox fully drained before the move, so
			// ordering is preserved).
			p.redirect(ObjLoc{Node: mv.Node, Addr: mv.Addr, Gen: mv.Gen})
			return p.remoteInvokeOrdered(ctx, method, args)
		}
		return res, err
	default:
		return p.remoteInvokeOrdered(ctx, method, args)
	}
}

// remoteInvokeOrdered performs a synchronous remote call ordered after the
// proxy's posted asynchronous stream.
func (p *Proxy) remoteInvokeOrdered(ctx context.Context, method string, args []any) (any, error) {
	p.FlushAggregation()
	if err := p.sequencer().FlushCtx(ctx); err != nil {
		return nil, fmt.Errorf("core: flush before %s.%s: %w", p.class, method, err)
	}
	return p.invokeRemote(ctx, "Invoke1", method, args)
}

// InvokeAsync starts a synchronous-style call without blocking the caller
// (the delegate BeginInvoke pattern of Fig. 4). The call is ordered after
// previously posted asynchronous calls on this proxy.
func (p *Proxy) InvokeAsync(method string, args ...any) *Future {
	return p.InvokeAsyncCtx(context.Background(), method, args...)
}

// InvokeAsyncCtx is InvokeAsync bounded by ctx; the returned Future
// resolves to ctx.Err() when ctx ends before the call completes.
//
// On a multiplexed remote proxy with an idle ordered lane this is the
// completion fast path: encode, enqueue on the connection, return the
// handle — the mux reader resolves the Future when the reply frame
// arrives, and no goroutine parks per outstanding call. The fast path
// falls back to a waiter goroutine only for the cases that need the full
// synchronous machinery: local objects, pending aggregation or ordered
// posts (the call must serialize behind them), non-multiplexed channels,
// and post-failure re-routing.
func (p *Proxy) InvokeAsyncCtx(ctx context.Context, method string, args ...any) *Future {
	if ctx == nil {
		ctx = context.Background()
	}
	if f, ok := p.invokeAsyncFast(ctx, method, args); ok {
		return f
	}
	f := &Future{exec: p.rt.contExec()}
	go func() {
		f.complete(p.InvokeCtx(ctx, method, args...))
	}()
	return f
}

// invokeAsyncFast attempts the goroutine-free submission. It reports false
// when the proxy's current state needs the ordinary path.
func (p *Proxy) invokeAsyncFast(ctx context.Context, method string, args []any) (*Future, bool) {
	mode, _ := p.state()
	if mode != modeRemote || p.rt.cfg.Channel.Kind() != remoting.Multiplexed {
		return nil, false
	}
	if p.rt.cfg.Aggregation.enabled() && p.hasAggregated() {
		return nil, false
	}
	// Ordering: a synchronous-style call must run after every posted
	// asynchronous call. With the lane idle there is nothing to order
	// behind; Posts from this very goroutine are already counted in Idle,
	// so the check is authoritative for the single-caller pattern.
	if !p.sequencer().Idle() {
		return nil, false
	}
	if p.rt.cfg.IdempotentCalls {
		if _, ok := remoting.TokenFromContext(ctx); !ok {
			ctx = remoting.ContextWithToken(ctx, p.rt.cfg.Channel.NewCallToken())
		}
	}
	p.rt.stats.syncCalls.Add(1)
	f := &Future{exec: p.rt.contExec()}
	ref := p.endpoint()
	err := ref.InvokeAsyncCb(ctx, "Invoke1", []any{method, args}, func(v any, err error) {
		if err != nil && ctx.Err() == nil && p.asyncRecoverable(err) {
			// Migration forward or node failure: hop off the completion
			// path and re-run through the full re-routing retry loop.
			go func() {
				f.complete(p.invokeVia(ctx, p.endpoint, "Invoke1", method, args))
			}()
			return
		}
		f.complete(v, err)
	})
	if err != nil {
		// Not submitted (callback will never run): let the slow path carry
		// the call through connection setup and error handling.
		return nil, false
	}
	return f, true
}

// asyncRecoverable reports whether an async completion error is one the
// synchronous path would transparently retry (re-route and re-invoke).
func (p *Proxy) asyncRecoverable(err error) bool {
	if _, ok := movedOf(err, p.uri); ok {
		return true
	}
	return errors.Is(err, errs.ErrNodeDown) || errors.Is(err, errs.ErrObjectDestroyed)
}

// hasAggregated reports whether posted calls are sitting in the
// aggregation buffer (which a synchronous-style call must flush first).
func (p *Proxy) hasAggregated() bool {
	p.aggMu.Lock()
	defer p.aggMu.Unlock()
	return len(p.aggCalls) > 0 || p.aggMethod != ""
}

// Post performs an asynchronous method call with no result (the paper's
// "asynchronous (when no value is returned)" calls). On remote proxies
// Posts are subject to method-call aggregation; Posts to one proxy execute
// in order.
func (p *Proxy) Post(method string, args ...any) {
	p.PostCtx(context.Background(), method, args...) //nolint:errcheck // errors flow to AsyncErr
}

// PostCtx is Post bounded by ctx. It returns an error only for immediate
// local failures (context already done, object destroyed); execution errors
// still flow to AsyncErr, preserving fire-and-forget semantics. For local
// active objects a queued call whose ctx ends before execution is skipped.
func (p *Proxy) PostCtx(ctx context.Context, method string, args ...any) error {
	p.rt.stats.asyncCalls.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		p.noteAsyncError(err)
		return err
	}
	switch mode, act := p.state(); mode {
	case modeAgglomerated:
		// Agglomeration turned this object passive: the "async" call
		// executes synchronously and serially, which is precisely the
		// parallelism-removal optimisation.
		w := &ioWrapper{rt: p.rt, class: p.class, obj: p.local}
		if _, err := w.Invoke1(ctx, method, args); err != nil {
			p.noteAsyncError(err)
		}
		return nil
	case modeLocalActive:
		// post reports execution failures (which may legitimately wrap a
		// MovedError from some other object) straight to AsyncErr; an
		// enqueue-time forward is only returned, and is a routing event,
		// not a failure — re-post remotely.
		err := act.post(ctx, method, args, p.noteAsyncError)
		if mv, ok := movedOf(err, p.uri); ok {
			p.redirect(ObjLoc{Node: mv.Node, Addr: mv.Addr, Gen: mv.Gen})
			return p.postRemote(method, args)
		}
		if err != nil {
			p.noteAsyncError(err)
		}
		return err
	default:
		return p.postRemote(method, args)
	}
}

// postRemote queues one asynchronous call on the ordered remote lane.
func (p *Proxy) postRemote(method string, args []any) error {
	if p.rt.cfg.Aggregation.enabled() {
		p.aggregate(method, args)
		return nil
	}
	p.sequencer().Post("Invoke1", method, args)
	return nil
}

// aggregate buffers one asynchronous call, flushing when the method
// changes, the buffer reaches MaxCalls, or the MaxDelay timer fires —
// the delay-and-combine of the paper's Fig. 7.
func (p *Proxy) aggregate(method string, args []any) {
	p.aggMu.Lock()
	if p.aggMethod != "" && p.aggMethod != method {
		p.flushLocked()
	}
	p.aggMethod = method
	p.aggCalls = append(p.aggCalls, []any(args))
	p.rt.stats.callsAggregated.Add(1)
	if len(p.aggCalls) >= p.rt.cfg.Aggregation.MaxCalls {
		p.flushLocked()
	} else if p.rt.cfg.Aggregation.MaxDelay > 0 && p.aggTimer == nil {
		p.aggTimer = time.AfterFunc(p.rt.cfg.Aggregation.MaxDelay, p.FlushAggregation)
	}
	p.aggMu.Unlock()
}

// FlushAggregation sends any buffered aggregate immediately.
func (p *Proxy) FlushAggregation() {
	p.aggMu.Lock()
	p.flushLocked()
	p.aggMu.Unlock()
}

// flushLocked requires aggMu held.
func (p *Proxy) flushLocked() {
	if p.aggTimer != nil {
		p.aggTimer.Stop()
		p.aggTimer = nil
	}
	if len(p.aggCalls) == 0 {
		p.aggMethod = ""
		return
	}
	method := p.aggMethod
	calls := p.aggCalls
	p.aggMethod = ""
	p.aggCalls = nil
	p.rt.stats.batchesSent.Add(1)
	p.sequencer().Post("InvokeBatch", method, calls)
}

// Wait blocks until every asynchronous call posted on this proxy has
// executed (aggregation buffers are flushed first). It is the
// synchronisation point farming masters use before reading results.
func (p *Proxy) Wait() {
	p.WaitCtx(context.Background()) //nolint:errcheck // background ctx never errs
}

// WaitCtx is Wait bounded by ctx; abandoning the wait leaves the posted
// calls draining in the background.
func (p *Proxy) WaitCtx(ctx context.Context) error {
	switch mode, act := p.state(); mode {
	case modeAgglomerated:
		// Posts already executed inline.
		return nil
	case modeLocalActive:
		return act.waitCtx(ctx)
	default:
		p.FlushAggregation()
		return p.sequencer().FlushCtx(ctx)
	}
}

// Migrate moves the parallel object to cluster node toNode; see
// MigrateCtx.
func (p *Proxy) Migrate(toNode int) error {
	return p.MigrateCtx(context.Background(), toNode)
}

// MigrateCtx live-migrates the parallel object to toNode and re-routes
// this proxy at the new location. Posted asynchronous calls are flushed
// first, so the snapshot that travels includes them. Agglomerated objects
// are part of their creator's grain and cannot migrate.
func (p *Proxy) MigrateCtx(ctx context.Context, toNode int) error {
	mode, _ := p.state()
	if mode == modeAgglomerated {
		return fmt.Errorf("core: migrate %s: agglomerated objects are part of their creator's grain", p.uri)
	}
	if err := p.WaitCtx(ctx); err != nil {
		return fmt.Errorf("core: migrate %s: %w", p.uri, err)
	}
	if mode == modeLocalActive {
		err := p.rt.MigrateCtx(ctx, p.uri, toNode)
		if mv, ok := movedOf(err, p.uri); ok {
			// Someone migrated it first; chase the forward through the
			// remote path below.
			p.redirect(ObjLoc{Node: mv.Node, Addr: mv.Addr, Gen: mv.Gen})
		} else if err != nil {
			return err
		} else {
			// The local runtime completed the move; follow it (unless the
			// "move" was a no-op to this very node).
			if loc, ok := p.rt.dirLookup(p.uri); ok && loc.Node != p.rt.NodeID() {
				p.redirect(loc)
			}
			return nil
		}
	}
	// Ask the hosting node's OM to migrate, retrying through forwards and
	// re-resolution exactly like a data call.
	res, err := p.omInvoke(ctx, "Migrate", p.uri, toNode)
	if err != nil {
		return fmt.Errorf("core: migrate %s to node %d: %w", p.uri, toNode, err)
	}
	var rr ResolveReply
	if err := wire.AssignTo(&rr, res); err == nil && rr.Found {
		p.redirect(ObjLoc{Node: rr.Node, Addr: rr.Addr, Gen: rr.Gen})
	}
	return nil
}

// omInvoke is invokeVia against the object manager of the node currently
// hosting this object.
func (p *Proxy) omInvoke(ctx context.Context, method string, args ...any) (any, error) {
	return p.invokeVia(ctx, p.omRef, method, args...)
}

// omRef builds a proxy for the hosting node's object manager at the
// current routing state. Local-mode proxies never set netaddr, so it
// falls back to this node's own OM (mirroring Ref's fallback) — which
// handles a destroy of an already-gone object gracefully instead of
// dialling an empty address.
func (p *Proxy) omRef() *remoting.ObjRef {
	p.mu.Lock()
	addr := p.netaddr
	p.mu.Unlock()
	if addr == "" {
		addr = p.rt.Addr()
	}
	return remoting.NewObjRef(p.rt.cfg.Channel, addr, omURI)
}

// Destroy releases the parallel object. Local objects unpublish
// immediately; remote objects are destroyed through their hosting OM, as
// the ParC++ RTS did on PO requests.
func (p *Proxy) Destroy() error {
	return p.DestroyCtx(context.Background())
}

// DestroyCtx is Destroy bounded by ctx.
func (p *Proxy) DestroyCtx(ctx context.Context) error {
	if err := p.WaitCtx(ctx); err != nil {
		return fmt.Errorf("core: destroy %s: %w", p.uri, err)
	}
	mode, _ := p.state()
	if mode == modeAgglomerated {
		p.rt.destroyLocal(p.uri)
		return nil
	}
	if mode == modeLocalActive {
		p.rt.actorsMu.Lock()
		hosted := p.rt.actors[p.uri] != nil
		p.rt.actorsMu.Unlock()
		if hosted {
			p.rt.destroyLocal(p.uri)
			return nil
		}
		// The object migrated away while this handle stayed local (no
		// call ever observed the forward): route at the forward and fall
		// through to the OM destroy so the live copy is released, not
		// just this node's tombstone.
		if loc, ok := p.rt.dirLookup(p.uri); ok && loc.Node != p.rt.NodeID() {
			p.redirect(loc)
		}
	}
	if _, err := p.omInvoke(ctx, "DestroyObject", p.uri); err != nil {
		return fmt.Errorf("core: destroy %s: %w", p.uri, err)
	}
	p.rt.dirDrop(p.uri)
	return nil
}

// String implements fmt.Stringer.
func (p *Proxy) String() string {
	mode, _ := p.state()
	name := map[proxyMode]string{
		modeAgglomerated: "agglomerated",
		modeLocalActive:  "local",
		modeRemote:       "remote",
	}[mode]
	return fmt.Sprintf("Proxy(%s %s %s)", p.class, name, p.uri)
}
