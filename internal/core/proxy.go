package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/remoting"
)

// proxyMode distinguishes the three call paths of the RTS.
type proxyMode int

const (
	// modeAgglomerated: object packed into the creator's grain; calls
	// execute synchronously and serially in the caller (Fig. 3 call b
	// after a call-d creation).
	modeAgglomerated proxyMode = iota
	// modeLocalActive: object on this node with its own thread of
	// control (mailbox).
	modeLocalActive
	// modeRemote: object on another node, reached through remoting
	// (Fig. 3 calls a).
	modeRemote
)

// Proxy is the PO of the paper: it has the same interface role as the
// object it represents (dynamically, via method names) and transparently
// forwards invocations to the implementation object, applying grain-size
// adaptations on the way.
type Proxy struct {
	rt      *Runtime
	class   string
	mode    proxyMode
	uri     string
	netaddr string

	local any                     // agglomerated IO
	act   *actor                  // local active IO
	ref   *remoting.ObjRef        // remote IO endpoint
	seq   *remoting.CallSequencer // ordered async lane for remote IO

	// aggregation state (remote mode only)
	aggMu     sync.Mutex
	aggMethod string
	aggCalls  []any
	aggTimer  *time.Timer

	errMu   sync.Mutex
	asyncEr error
}

// Class returns the object's registered class name.
func (p *Proxy) Class() string { return p.class }

// URI returns the object's published URI.
func (p *Proxy) URI() string { return p.uri }

// IsLocal reports whether calls execute on this node.
func (p *Proxy) IsLocal() bool { return p.mode != modeRemote }

// IsAgglomerated reports whether the object was packed into its creator's
// grain (parallelism removed).
func (p *Proxy) IsAgglomerated() bool { return p.mode == modeAgglomerated }

// Ref returns a wire-encodable reference that other nodes can Attach.
func (p *Proxy) Ref() ProxyRef {
	addr := p.netaddr
	if addr == "" {
		addr = p.rt.Addr()
	}
	return ProxyRef{NetAddr: addr, URI: p.uri, Class: p.class}
}

// noteAsyncError records the first asynchronous failure for AsyncErr.
func (p *Proxy) noteAsyncError(err error) {
	p.errMu.Lock()
	if p.asyncEr == nil {
		p.asyncEr = err
	}
	p.errMu.Unlock()
}

// AsyncErr returns the first error produced by an asynchronous call, if
// any. Call after Flush/Wait to check a stream of Posts.
func (p *Proxy) AsyncErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.asyncEr
}

// Invoke performs a synchronous method call (the paper's "synchronous
// method calls (when a value is returned)"). It is ordered after all
// previously posted asynchronous calls on this proxy.
func (p *Proxy) Invoke(method string, args ...any) (any, error) {
	return p.InvokeCtx(context.Background(), method, args...)
}

// InvokeCtx is Invoke bounded by ctx: cancellation aborts the in-flight
// exchange (or the mailbox wait, for local objects) and the deadline
// travels to the hosting node. It is ordered after all previously posted
// asynchronous calls on this proxy.
func (p *Proxy) InvokeCtx(ctx context.Context, method string, args ...any) (any, error) {
	p.rt.stats.syncCalls.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	switch p.mode {
	case modeAgglomerated:
		w := &ioWrapper{rt: p.rt, class: p.class, obj: p.local}
		return w.Invoke1(ctx, method, args)
	case modeLocalActive:
		return p.act.callCtx(ctx, method, args)
	default:
		p.FlushAggregation()
		if err := p.seq.FlushCtx(ctx); err != nil {
			return nil, fmt.Errorf("core: flush before %s.%s: %w", p.class, method, err)
		}
		return p.ref.InvokeCtx(ctx, "Invoke1", method, args)
	}
}

// Future is the handle of an asynchronous call with a result.
type Future struct {
	done chan struct{}
	val  any
	err  error
}

// Get blocks until the call completes.
func (f *Future) Get() (any, error) {
	<-f.done
	return f.val, f.err
}

// GetCtx blocks until the call completes or ctx ends, in which case it
// returns ctx.Err() (the call itself keeps running; a later Get still
// observes its outcome).
func (f *Future) GetCtx(ctx context.Context) (any, error) {
	if ctx == nil || ctx.Done() == nil {
		return f.Get()
	}
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Done returns a channel closed on completion.
func (f *Future) Done() <-chan struct{} { return f.done }

// InvokeAsync starts a synchronous-style call without blocking the caller
// (the delegate BeginInvoke pattern of Fig. 4). The call is ordered after
// previously posted asynchronous calls on this proxy.
func (p *Proxy) InvokeAsync(method string, args ...any) *Future {
	return p.InvokeAsyncCtx(context.Background(), method, args...)
}

// InvokeAsyncCtx is InvokeAsync bounded by ctx; the returned Future
// resolves to ctx.Err() when ctx ends before the call completes.
func (p *Proxy) InvokeAsyncCtx(ctx context.Context, method string, args ...any) *Future {
	f := &Future{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		f.val, f.err = p.InvokeCtx(ctx, method, args...)
	}()
	return f
}

// Post performs an asynchronous method call with no result (the paper's
// "asynchronous (when no value is returned)" calls). On remote proxies
// Posts are subject to method-call aggregation; Posts to one proxy execute
// in order.
func (p *Proxy) Post(method string, args ...any) {
	p.PostCtx(context.Background(), method, args...) //nolint:errcheck // errors flow to AsyncErr
}

// PostCtx is Post bounded by ctx. It returns an error only for immediate
// local failures (context already done, object destroyed); execution errors
// still flow to AsyncErr, preserving fire-and-forget semantics. For local
// active objects a queued call whose ctx ends before execution is skipped.
func (p *Proxy) PostCtx(ctx context.Context, method string, args ...any) error {
	p.rt.stats.asyncCalls.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		p.noteAsyncError(err)
		return err
	}
	switch p.mode {
	case modeAgglomerated:
		// Agglomeration turned this object passive: the "async" call
		// executes synchronously and serially, which is precisely the
		// parallelism-removal optimisation.
		w := &ioWrapper{rt: p.rt, class: p.class, obj: p.local}
		if _, err := w.Invoke1(ctx, method, args); err != nil {
			p.noteAsyncError(err)
		}
		return nil
	case modeLocalActive:
		return p.act.post(ctx, method, args, p.noteAsyncError)
	default:
		if p.rt.cfg.Aggregation.enabled() {
			p.aggregate(method, args)
			return nil
		}
		p.seq.Post("Invoke1", method, args)
		return nil
	}
}

// aggregate buffers one asynchronous call, flushing when the method
// changes, the buffer reaches MaxCalls, or the MaxDelay timer fires —
// the delay-and-combine of the paper's Fig. 7.
func (p *Proxy) aggregate(method string, args []any) {
	p.aggMu.Lock()
	if p.aggMethod != "" && p.aggMethod != method {
		p.flushLocked()
	}
	p.aggMethod = method
	p.aggCalls = append(p.aggCalls, []any(args))
	p.rt.stats.callsAggregated.Add(1)
	if len(p.aggCalls) >= p.rt.cfg.Aggregation.MaxCalls {
		p.flushLocked()
	} else if p.rt.cfg.Aggregation.MaxDelay > 0 && p.aggTimer == nil {
		p.aggTimer = time.AfterFunc(p.rt.cfg.Aggregation.MaxDelay, p.FlushAggregation)
	}
	p.aggMu.Unlock()
}

// FlushAggregation sends any buffered aggregate immediately.
func (p *Proxy) FlushAggregation() {
	p.aggMu.Lock()
	p.flushLocked()
	p.aggMu.Unlock()
}

// flushLocked requires aggMu held.
func (p *Proxy) flushLocked() {
	if p.aggTimer != nil {
		p.aggTimer.Stop()
		p.aggTimer = nil
	}
	if len(p.aggCalls) == 0 {
		p.aggMethod = ""
		return
	}
	method := p.aggMethod
	calls := p.aggCalls
	p.aggMethod = ""
	p.aggCalls = nil
	p.rt.stats.batchesSent.Add(1)
	p.seq.Post("InvokeBatch", method, calls)
}

// Wait blocks until every asynchronous call posted on this proxy has
// executed (aggregation buffers are flushed first). It is the
// synchronisation point farming masters use before reading results.
func (p *Proxy) Wait() {
	p.WaitCtx(context.Background()) //nolint:errcheck // background ctx never errs
}

// WaitCtx is Wait bounded by ctx; abandoning the wait leaves the posted
// calls draining in the background.
func (p *Proxy) WaitCtx(ctx context.Context) error {
	switch p.mode {
	case modeAgglomerated:
		// Posts already executed inline.
		return nil
	case modeLocalActive:
		return p.act.waitCtx(ctx)
	default:
		p.FlushAggregation()
		return p.seq.FlushCtx(ctx)
	}
}

// Destroy releases the parallel object. Local objects unpublish
// immediately; remote objects are destroyed through their hosting OM, as
// the ParC++ RTS did on PO requests.
func (p *Proxy) Destroy() error {
	return p.DestroyCtx(context.Background())
}

// DestroyCtx is Destroy bounded by ctx.
func (p *Proxy) DestroyCtx(ctx context.Context) error {
	if err := p.WaitCtx(ctx); err != nil {
		return fmt.Errorf("core: destroy %s: %w", p.uri, err)
	}
	switch p.mode {
	case modeAgglomerated, modeLocalActive:
		p.rt.destroyLocal(p.uri)
		return nil
	default:
		om := remoting.NewObjRef(p.rt.cfg.Channel, p.netaddr, omURI)
		if _, err := om.InvokeCtx(ctx, "DestroyObject", p.uri); err != nil {
			return fmt.Errorf("core: destroy %s: %w", p.uri, err)
		}
		return nil
	}
}

// String implements fmt.Stringer.
func (p *Proxy) String() string {
	mode := map[proxyMode]string{
		modeAgglomerated: "agglomerated",
		modeLocalActive:  "local",
		modeRemote:       "remote",
	}[p.mode]
	return fmt.Sprintf("Proxy(%s %s %s)", p.class, mode, p.uri)
}
