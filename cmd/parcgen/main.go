// Command parcgen is the ParC# preprocessor (paper §3.2) for Go sources:
// it scans a file for types annotated with //parc:parallel and generates
// the proxy-object code the C# preprocessor produced (PO types, factories
// and typed async/sync method wrappers), plus typed invoker thunks so
// server-side dispatch skips reflection. Structs annotated //parc:wire get
// generated MarshalWire/UnmarshalWire codecs — the zero-reflection binfmt
// fast path, byte-compatible with the reflective encoder.
//
// Usage:
//
//	parcgen -in server.go [-out server_parc.go]
//
// A go:generate line keeps the output fresh:
//
//	//go:generate go run repro/cmd/parcgen -in server.go -out server_parc.go
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/parcgen"
)

func main() {
	in := flag.String("in", "", "input Go source file")
	out := flag.String("out", "", "output file (default <in>_parc.go)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "parcgen: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if *out == "" {
		*out = strings.TrimSuffix(*in, ".go") + "_parc.go"
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parcgen: %v\n", err)
		os.Exit(1)
	}
	gen, err := parcgen.GenerateFile(*in, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parcgen: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, gen, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "parcgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("parcgen: wrote %s\n", *out)
}
