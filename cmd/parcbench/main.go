// Command parcbench regenerates every figure and table of the paper's
// evaluation (§4) plus the DESIGN.md ablations, printing paper-style tables
// with the measured stacks next to the analytic cost model.
//
// Usage:
//
//	parcbench                        # every experiment, quick settings
//	parcbench -full                  # full sweeps (paper-sized; minutes)
//	parcbench -exp fig8a             # one experiment
//	parcbench -exp fanout -exp codec # several (repeat -exp or comma-join)
//	parcbench -exp fanout -exp codec -json > BENCH.json
//
// Experiments: fig8a fig8b latency fig9 seqratio overhead agg agglom
// codecs pool fanout codec.
//
// With -json the human tables go to stderr and a machine-readable
// bench.Report (the format BENCH_baseline.json and the CI regression gate
// consume) is written to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/netsim"
	"repro/internal/profile"
)

// expFlag collects repeated and/or comma-separated -exp values.
type expFlag []string

func (e *expFlag) String() string { return strings.Join(*e, ",") }

func (e *expFlag) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*e = append(*e, part)
		}
	}
	return nil
}

func main() {
	var exps expFlag
	flag.Var(&exps, "exp", "experiment id, repeatable/comma-separated (all, fig8a, fig8b, latency, fig9, seqratio, overhead, agg, agglom, codecs, pool, fanout, codec)")
	full := flag.Bool("full", false, "full paper-sized sweeps (slower)")
	asJSON := flag.Bool("json", false, "write a machine-readable bench.Report to stdout (tables go to stderr)")
	flag.Parse()
	if len(exps) == 0 {
		exps = expFlag{"all"}
	}

	run := func(name string) bool {
		for _, e := range exps {
			if e == "all" || strings.EqualFold(e, name) {
				return true
			}
		}
		return false
	}
	var out io.Writer = os.Stdout
	if *asJSON {
		out = os.Stderr
	}
	var report bench.Report
	any := false

	if run("fig8a") {
		any = true
		fmt.Fprintln(out, "================================================================")
		stacks, err := bench.Fig8aStacks()
		if err != nil {
			log.Fatal(err)
		}
		rows, err := bench.Sweep(stacks, bench.MessageSizes(*full), *full)
		bench.CloseAll(stacks)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintBandwidth(out, "Fig. 8a — inter-node bandwidth, measured (MPI vs Java RMI vs Mono)", rows)
		model := bench.ModelSweep(
			[]bench.StackModel{bench.ModelMPI(), bench.ModelRMI(), bench.ModelMono117()},
			bench.MessageSizes(*full))
		bench.PrintBandwidth(out, "Fig. 8a — analytic cost model", model)
	}
	if run("fig8b") {
		any = true
		fmt.Fprintln(out, "================================================================")
		stacks, err := bench.Fig8bStacks()
		if err != nil {
			log.Fatal(err)
		}
		rows, err := bench.Sweep(stacks, bench.MessageSizes(*full), *full)
		bench.CloseAll(stacks)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintBandwidth(out, "Fig. 8b — Mono implementations (Tcp 1.1.7 vs Tcp 1.0.5 vs Http)", rows)
		model := bench.ModelSweep(
			[]bench.StackModel{bench.ModelMono117(), bench.ModelMono105(), bench.ModelMonoHTTP()},
			bench.MessageSizes(*full))
		bench.PrintBandwidth(out, "Fig. 8b — analytic cost model", model)
	}
	if run("latency") {
		any = true
		fmt.Fprintln(out, "================================================================")
		stacks, err := bench.Fig8aStacks()
		if err != nil {
			log.Fatal(err)
		}
		reps := 50
		if !*full {
			reps = 20
		}
		rows, err := bench.MeasureLatency(stacks, reps)
		bench.CloseAll(stacks)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintLatency(out, "E3 — inter-node round-trip latency (paper: MPI 100, Mono 273, RMI 520 us)", rows)
	}
	if run("fig9") {
		any = true
		fmt.Fprintln(out, "================================================================")
		cfg := bench.DefaultFig9Config(*full)
		rows, err := bench.RunFig9(cfg)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintFig9(out, rows)
		fmt.Fprintf(out, "(image %dx%d, time scale 1/%.0f; checksums equal across systems: %v)\n",
			cfg.Width, cfg.Height, cfg.TimeScale, checksumsAgree(rows))
	}
	if run("seqratio") {
		any = true
		fmt.Fprintln(out, "================================================================")
		n := 500_000
		if *full {
			n = 5_000_000
		}
		bench.PrintSeqRatios(out, bench.RunSeqRatios(n))
	}
	if run("overhead") {
		any = true
		fmt.Fprintln(out, "================================================================")
		reps := 30
		if !*full {
			reps = 15
		}
		res, err := bench.RunOverhead(1024, reps, profile.Network())
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintOverhead(out, res)
	}
	if run("agg") {
		any = true
		fmt.Fprintln(out, "================================================================")
		n := 200
		sweep := []int{1, 4, 16, 64}
		if *full {
			n = 600
			sweep = []int{1, 4, 16, 64, 256}
		}
		rows, err := bench.RunAggregationSweep(n, sweep, profile.Network())
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintAggregation(out, rows)
	}
	if run("agglom") {
		any = true
		fmt.Fprintln(out, "================================================================")
		objects, calls := 8, 25
		if *full {
			objects, calls = 16, 50
		}
		rows, err := bench.RunAgglomerationAblation(objects, calls, profile.Network())
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintAgglomeration(out, rows)
	}
	if run("codecs") {
		any = true
		fmt.Fprintln(out, "================================================================")
		rows, err := bench.RunCodecAblation(1024)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintCodecs(out, rows)
	}
	if run("pool") {
		any = true
		fmt.Fprintln(out, "================================================================")
		cfg := bench.DefaultFig9Config(false)
		cfg.Net = netsim.Ethernet100()
		sizes := []int{1, 2, 4, 8}
		rows, err := bench.RunPoolAblation(cfg, 4, sizes)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintPool(out, rows)
	}
	if run("fanout") {
		any = true
		fmt.Fprintln(out, "================================================================")
		callers, calls := 64, 30
		if *full {
			callers, calls = 128, 200
		}
		rows, err := bench.RunPipelinedFanout(callers, calls)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintFanout(out, rows)
		report.Fanout = rows
	}
	if run("codec") {
		any = true
		fmt.Fprintln(out, "================================================================")
		rows, err := bench.RunCodec()
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintCodec(out, rows)
		report.Codec = rows
	}
	if !any {
		log.Fatalf("unknown experiment(s) %q", exps.String())
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatal(err)
		}
	}
}

func checksumsAgree(rows []bench.Fig9Row) bool {
	var first int64
	for i, r := range rows {
		for _, sum := range r.Checksum {
			if i == 0 && first == 0 {
				first = sum
			}
			if sum != first {
				return false
			}
		}
	}
	return true
}
