// Command parcbench regenerates every figure and table of the paper's
// evaluation (§4) plus the DESIGN.md ablations, printing paper-style tables
// with the measured stacks next to the analytic cost model.
//
// Usage:
//
//	parcbench                        # every experiment, quick settings
//	parcbench -full                  # full sweeps (paper-sized; minutes)
//	parcbench -exp fig8a             # one experiment
//	parcbench -exp fanout -exp codec # several (repeat -exp or comma-join)
//	parcbench -exp fanout -exp codec -json > BENCH.json
//
// Experiments: fig8a fig8b latency fig9 seqratio overhead agg agglom
// codecs pool fanout codec rebalance failover openloop.
//
// With -json the human tables go to stderr and a machine-readable
// bench.Report (the format BENCH_baseline.json and the CI regression gate
// consume) is written to stdout; the report records the Go version and
// GOMAXPROCS it was measured under.
//
// -cpuprofile/-memprofile write pprof artifacts covering the experiment
// runs, so a hot-path regression flagged by the CI gate can be diagnosed
// straight from a bench run (go tool pprof <binary> cpu.out).
//
// -payload sweeps the fanout experiment across payload sizes (for example
// -payload 16,256,4096); -nobind forces the string envelope on every call
// (the remoting.Channel.DisableBinding escape hatch), letting CI smoke
// both envelope variants. -procs sweeps GOMAXPROCS (for example
// -procs 1,4 records the multi-core matrix the baseline commits) and
// -lanes pins the multiplexed channel's connection-lane count (1 restores
// the single-connection path for before/after comparisons).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/netsim"
	"repro/internal/profile"
)

// expFlag collects repeated and/or comma-separated -exp values.
type expFlag []string

func (e *expFlag) String() string { return strings.Join(*e, ",") }

func (e *expFlag) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*e = append(*e, part)
		}
	}
	return nil
}

func main() {
	var exps expFlag
	flag.Var(&exps, "exp", "experiment id, repeatable/comma-separated (all, fig8a, fig8b, latency, fig9, seqratio, overhead, agg, agglom, codecs, pool, fanout, codec, rebalance, failover, openloop, chaos, skeletons)")
	full := flag.Bool("full", false, "full paper-sized sweeps (slower)")
	asJSON := flag.Bool("json", false, "write a machine-readable bench.Report to stdout (tables go to stderr)")
	payloads := flag.String("payload", "", "fanout payload sizes in bytes, comma-separated (e.g. 16,256,4096); empty = default 64")
	noBind := flag.Bool("nobind", false, "disable bound call handles: every fanout call uses the string envelope")
	procs := flag.String("procs", "", "fanout GOMAXPROCS matrix, comma-separated (e.g. 1,4); empty = current setting, no sweep")
	lanes := flag.Int("lanes", 0, "multiplexed channel lanes per peer in the fanout experiment (0 = default min(GOMAXPROCS,4), 1 = single connection)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the experiment runs to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile (after the runs) to this file")
	flag.Parse()
	if len(exps) == 0 {
		exps = expFlag{"all"}
	}
	fanoutPayloads, err := parseIntList(*payloads)
	if err != nil {
		log.Fatalf("parcbench: -payload: %v", err)
	}
	fanoutProcs, err := parseIntList(*procs)
	if err != nil {
		log.Fatalf("parcbench: -procs: %v", err)
	}
	// log.Fatal calls os.Exit, which skips deferred StopCPUProfile and
	// would leave a truncated -cpuprofile artifact; every fatal exit after
	// profiling starts goes through these instead. StopCPUProfile is a
	// no-op when profiling is off.
	fatal := func(v ...any) {
		pprof.StopCPUProfile()
		log.Fatal(v...)
	}
	fatalf := func(format string, args ...any) {
		pprof.StopCPUProfile()
		log.Fatalf(format, args...)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("parcbench: -cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("parcbench: -cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatalf("parcbench: -memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("parcbench: -memprofile: %v", err)
			}
		}()
	}

	run := func(name string) bool {
		for _, e := range exps {
			if e == "all" || strings.EqualFold(e, name) {
				return true
			}
		}
		return false
	}
	var out io.Writer = os.Stdout
	if *asJSON {
		out = os.Stderr
	}
	var report bench.Report
	any := false

	if run("fig8a") {
		any = true
		fmt.Fprintln(out, "================================================================")
		stacks, err := bench.Fig8aStacks()
		if err != nil {
			fatal(err)
		}
		rows, err := bench.Sweep(stacks, bench.MessageSizes(*full), *full)
		bench.CloseAll(stacks)
		if err != nil {
			fatal(err)
		}
		bench.PrintBandwidth(out, "Fig. 8a — inter-node bandwidth, measured (MPI vs Java RMI vs Mono)", rows)
		model := bench.ModelSweep(
			[]bench.StackModel{bench.ModelMPI(), bench.ModelRMI(), bench.ModelMono117()},
			bench.MessageSizes(*full))
		bench.PrintBandwidth(out, "Fig. 8a — analytic cost model", model)
	}
	if run("fig8b") {
		any = true
		fmt.Fprintln(out, "================================================================")
		stacks, err := bench.Fig8bStacks()
		if err != nil {
			fatal(err)
		}
		rows, err := bench.Sweep(stacks, bench.MessageSizes(*full), *full)
		bench.CloseAll(stacks)
		if err != nil {
			fatal(err)
		}
		bench.PrintBandwidth(out, "Fig. 8b — Mono implementations (Tcp 1.1.7 vs Tcp 1.0.5 vs Http)", rows)
		model := bench.ModelSweep(
			[]bench.StackModel{bench.ModelMono117(), bench.ModelMono105(), bench.ModelMonoHTTP()},
			bench.MessageSizes(*full))
		bench.PrintBandwidth(out, "Fig. 8b — analytic cost model", model)
	}
	if run("latency") {
		any = true
		fmt.Fprintln(out, "================================================================")
		stacks, err := bench.Fig8aStacks()
		if err != nil {
			fatal(err)
		}
		reps := 50
		if !*full {
			reps = 20
		}
		rows, err := bench.MeasureLatency(stacks, reps)
		bench.CloseAll(stacks)
		if err != nil {
			fatal(err)
		}
		bench.PrintLatency(out, "E3 — inter-node round-trip latency (paper: MPI 100, Mono 273, RMI 520 us)", rows)
	}
	if run("fig9") {
		any = true
		fmt.Fprintln(out, "================================================================")
		cfg := bench.DefaultFig9Config(*full)
		rows, err := bench.RunFig9(cfg)
		if err != nil {
			fatal(err)
		}
		bench.PrintFig9(out, rows)
		fmt.Fprintf(out, "(image %dx%d, time scale 1/%.0f; checksums equal across systems: %v)\n",
			cfg.Width, cfg.Height, cfg.TimeScale, checksumsAgree(rows))
	}
	if run("seqratio") {
		any = true
		fmt.Fprintln(out, "================================================================")
		n := 500_000
		if *full {
			n = 5_000_000
		}
		bench.PrintSeqRatios(out, bench.RunSeqRatios(n))
	}
	if run("overhead") {
		any = true
		fmt.Fprintln(out, "================================================================")
		reps := 30
		if !*full {
			reps = 15
		}
		res, err := bench.RunOverhead(1024, reps, profile.Network())
		if err != nil {
			fatal(err)
		}
		bench.PrintOverhead(out, res)
	}
	if run("agg") {
		any = true
		fmt.Fprintln(out, "================================================================")
		n := 200
		sweep := []int{1, 4, 16, 64}
		if *full {
			n = 600
			sweep = []int{1, 4, 16, 64, 256}
		}
		rows, err := bench.RunAggregationSweep(n, sweep, profile.Network())
		if err != nil {
			fatal(err)
		}
		bench.PrintAggregation(out, rows)
	}
	if run("agglom") {
		any = true
		fmt.Fprintln(out, "================================================================")
		objects, calls := 8, 25
		if *full {
			objects, calls = 16, 50
		}
		rows, err := bench.RunAgglomerationAblation(objects, calls, profile.Network())
		if err != nil {
			fatal(err)
		}
		bench.PrintAgglomeration(out, rows)
	}
	if run("codecs") {
		any = true
		fmt.Fprintln(out, "================================================================")
		rows, err := bench.RunCodecAblation(1024)
		if err != nil {
			fatal(err)
		}
		bench.PrintCodecs(out, rows)
	}
	if run("pool") {
		any = true
		fmt.Fprintln(out, "================================================================")
		cfg := bench.DefaultFig9Config(false)
		cfg.Net = netsim.Ethernet100()
		sizes := []int{1, 2, 4, 8}
		rows, err := bench.RunPoolAblation(cfg, 4, sizes)
		if err != nil {
			fatal(err)
		}
		bench.PrintPool(out, rows)
	}
	if run("fanout") {
		any = true
		fmt.Fprintln(out, "================================================================")
		callers, calls := 64, 30
		if *full {
			callers, calls = 128, 200
		}
		rows, err := bench.RunFanout(bench.FanoutConfig{
			Callers:        callers,
			CallsPerCaller: calls,
			Payloads:       fanoutPayloads,
			DisableBinding: *noBind,
			Procs:          fanoutProcs,
			Lanes:          *lanes,
		})
		if err != nil {
			fatal(err)
		}
		bench.PrintFanout(out, rows)
		report.Fanout = rows
	}
	if run("codec") {
		any = true
		fmt.Fprintln(out, "================================================================")
		rows, err := bench.RunCodec()
		if err != nil {
			fatal(err)
		}
		bench.PrintCodec(out, rows)
		report.Codec = rows
	}
	if run("rebalance") {
		any = true
		fmt.Fprintln(out, "================================================================")
		// The before/after windows feed the CI-gated recovery ratio: they
		// must be wide enough that a single scheduler or GC hiccup on a
		// shared runner cannot move the ratio by the gate's tolerance.
		cfg := bench.RebalanceConfig{Objects: 16, Callers: 8, Phase: 400 * time.Millisecond}
		if *full {
			cfg = bench.RebalanceConfig{Objects: 64, Callers: 32, Phase: time.Second}
		}
		rows, err := bench.RunRebalance(cfg)
		if err != nil {
			fatal(err)
		}
		bench.PrintRebalance(out, rows)
		report.Rebalance = rows
	}
	if run("failover") {
		any = true
		fmt.Fprintln(out, "================================================================")
		// MinRecovery is the hard CI floor on failover quality: the cluster
		// must be back to at least 70% of pre-kill throughput once callers
		// have re-routed. The windows are sized like rebalance's so shared
		// runners cannot flap the gated ratio.
		cfg := bench.FailoverConfig{Keys: 12, Callers: 8, Phase: 400 * time.Millisecond, MinRecovery: 0.7}
		if *full {
			cfg = bench.FailoverConfig{Keys: 32, Callers: 16, Phase: time.Second, MinRecovery: 0.7}
		}
		rows, err := bench.RunFailover(cfg)
		if err != nil {
			fatal(err)
		}
		bench.PrintFailover(out, rows)
		report.Failover = rows
	}
	if run("openloop") {
		any = true
		fmt.Fprintln(out, "================================================================")
		// Open-loop serving: Poisson arrivals against bounded mailboxes.
		// RunOpenLoop hard-asserts the admission-control contract (sheds at
		// 2x capacity, p99 of accepted calls under the SLO, accepted ratio
		// near capacity) so a broken shed path fails the bench outright,
		// not just the diff. The quick window is sized for the CI race
		// smoke; -full widens it for committed baselines.
		cfg := bench.OpenLoopConfig{}
		if *full {
			cfg.Duration = 2 * time.Second
		}
		rows, err := bench.RunOpenLoop(cfg)
		if err != nil {
			fatal(err)
		}
		bench.PrintOpenLoop(out, rows)
		report.OpenLoop = rows
	}
	if run("chaos") {
		any = true
		fmt.Fprintln(out, "================================================================")
		// Chaos: a seeded fault schedule (partitions, crashes, stalls)
		// against retried idempotent calls. RunChaos hard-asserts the
		// correctness invariants itself — zero lost acknowledgements, zero
		// double-executions, every key served within the recovery deadline —
		// so a broken retry/dedup/failover path fails the bench outright.
		// MinRecovery additionally floors post-heal throughput; it is set
		// well below the failover gate's because the chaos run ends right
		// after the final heal, before placement has fully settled.
		cfg := bench.ChaosConfig{Keys: 6, Callers: 6, Calm: 250 * time.Millisecond, Chaos: time.Second, Seed: 1, MinRecovery: 0.25}
		if *full {
			cfg = bench.ChaosConfig{Keys: 12, Callers: 12, Calm: 500 * time.Millisecond, Chaos: 2 * time.Second, Seed: 1, MinRecovery: 0.25}
		}
		rows, err := bench.RunChaos(cfg)
		if err != nil {
			fatal(err)
		}
		bench.PrintChaos(out, rows)
		report.Chaos = rows
	}
	if run("skeletons") {
		any = true
		fmt.Fprintln(out, "================================================================")
		// Skeletons: completion-driven futures and the Scatter/Gather
		// skeleton over a 3-node cluster. RunSkeletons hard-asserts the
		// goroutine-flatness contract itself (thousands of outstanding
		// futures, goroutine delta bounded by the in-flight window), so a
		// regression to goroutine-per-call fails the bench outright; the
		// skeleton-vs-handrolled calls/s ratio feeds the diff gates.
		cfg := bench.SkeletonConfig{}
		if *full {
			cfg = bench.SkeletonConfig{Outstanding: 20000, Workers: 16, Window: time.Second}
		}
		rows, err := bench.RunSkeletons(cfg)
		if err != nil {
			fatal(err)
		}
		bench.PrintSkeletons(out, rows)
		report.Skeletons = rows
	}
	if !any {
		fatalf("unknown experiment(s) %q", exps.String())
	}
	if *asJSON {
		report.Meta = bench.CurrentMeta()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
	}
}

// parseIntList parses the comma-separated -payload and -procs flags.
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad payload size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func checksumsAgree(rows []bench.Fig9Row) bool {
	var first int64
	for i, r := range rows {
		for _, sum := range r.Checksum {
			if i == 0 && first == 0 {
				first = sum
			}
			if sum != first {
				return false
			}
		}
	}
	return true
}
