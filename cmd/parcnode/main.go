// Command parcnode runs one SCOOPP cluster node as an OS process over real
// TCP — the deployment the paper ran on its Linux cluster. Every node is
// started with the same ordered peer list; node 0 conventionally runs the
// application.
//
// A three-node cluster on one machine:
//
//	parcnode -id 1 -peers :7001,:7002,:7003 &
//	parcnode -id 2 -peers :7001,:7002,:7003 &
//	parcnode -id 0 -peers :7001,:7002,:7003 -demo sieve -n 200
//
// Worker nodes (-demo "") serve until killed. The binary registers the
// workload classes shipped in this repository (sieve filters, ray-tracer
// workers); linking user classes in means building your own main around
// parc.ServeNode.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/sieve"
	"repro/parc"
)

// vcounter is the virtual-object demo class: a counter addressed by key,
// activated by its first call on whichever node the consistent-hash ring
// assigns, and (because it registers with one replica) surviving that
// node's death with its state intact. Its state is exported so snapshots
// carry it.
type vcounter struct {
	N int64
}

func (c *vcounter) Bump(v int64) int64 { c.N += v; return c.N }
func (c *vcounter) Total() int64       { return c.N }

func main() {
	id := flag.Int("id", 0, "this node's index into -peers")
	peers := flag.String("peers", ":7001", "comma-separated listen addresses of all nodes, in node-id order")
	demo := flag.String("demo", "", "workload to drive from this node: '' (serve only), 'sieve' or 'vcounter'")
	n := flag.Int("n", 200, "sieve bound for -demo sieve; keys x bumps for -demo vcounter")
	maxCalls := flag.Int("maxcalls", 16, "method-call aggregation batch size")
	probe := flag.Duration("probe", 0, "peer health-probe interval (0 disables); down peers are excluded from placement")
	rebalance := flag.Duration("rebalance", 0, "automatic rebalance interval (0 disables); overloaded nodes live-migrate objects away")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if *id < 0 || *id >= len(addrs) {
		log.Fatalf("parcnode: -id %d outside -peers list of %d", *id, len(addrs))
	}
	rt, err := parc.ServeNode(
		parc.WithNodeID(*id),
		parc.WithListen(addrs[*id]),
		parc.WithAggregation(*maxCalls, 0),
		parc.WithHealthProbe(*probe),
		parc.WithRebalance(*rebalance),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	log.Printf("parcnode: node %d serving on %s", *id, rt.Addr())
	sieve.RegisterClasses(rt)
	// Virtual classes must be registered identically on every node; the
	// ring decides at call time which node actually hosts each key.
	parc.RegisterVirtualAt[vcounter](rt, "vcounter", parc.WithReplicas(1))

	// The listen addresses may use :0; substitute this node's resolved
	// address before joining.
	addrs[*id] = rt.Addr()
	if err := waitForPeers(rt, addrs, 30*time.Second); err != nil {
		log.Fatal(err)
	}
	if err := rt.JoinCluster(addrs); err != nil {
		log.Fatal(err)
	}
	log.Printf("parcnode: node %d joined cluster of %d", *id, len(addrs))

	switch *demo {
	case "":
		// Serve until interrupted.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		log.Printf("parcnode: node %d shutting down", *id)
	case "sieve":
		start := time.Now()
		primes, err := sieve.Pipeline(rt, *n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("primes <= %d: %d found in %v across %d nodes\n",
			*n, len(primes), time.Since(start), len(addrs))
	case "vcounter":
		// Bump a handful of keys; each key activates on its ring owner at
		// the first call — no node ever creates these objects explicitly.
		ctx := context.Background()
		keys := *n
		if keys > 16 {
			keys = 16
		}
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("user%d", k)
			obj, err := parc.VirtualAt[vcounter](ctx, rt, "vcounter", key)
			if err != nil {
				log.Fatal(err)
			}
			total, err := parc.Call[int64](ctx, obj, "Bump", int64(k+1))
			if err != nil {
				log.Fatal(err)
			}
			owner, _ := rt.VirtualOwner("vcounter", key)
			fmt.Printf("vcounter/%s on node %d: total %d\n", key, owner, total)
		}
	default:
		log.Fatalf("parcnode: unknown -demo %q", *demo)
	}
}

// waitForPeers blocks until every peer's listener accepts connections, so
// nodes can be started in any order.
func waitForPeers(rt *parc.Runtime, addrs []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for i, addr := range addrs {
		if addr == rt.Addr() {
			continue
		}
		for {
			if err := probe(addr); err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("parcnode: peer %d at %s never came up", i, addr)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	return nil
}

func probe(addr string) error {
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	c.Close()
	return nil
}
