// Command benchdiff is the CI benchmark-regression gate: it compares a
// fresh parcbench -json report against the committed baseline and exits
// non-zero when a tracked metric regressed beyond the tolerance.
//
// Usage:
//
//	go run ./cmd/parcbench -exp fanout -exp codec -json > BENCH_current.json
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_current.json
//
// Tracked metrics: fanout calls/s (per channel and payload size, must not
// drop), codec ns/op (per path/op, must not rise), codec allocs/op
// (per path/op, must never rise — allocation counts are deterministic, so
// a pooling regression has no noise excuse and gets no tolerance; the
// alloc gate applies in -relative mode too), and the open-loop serving
// rows (per scenario and offered-rate factor: accepted calls/s must not
// drop, p99 of accepted calls must not rise, and the shed rate must not
// rise beyond the tolerance), plus the rebalance, failover and chaos
// recovery ratios (capped at 1.0, must not drop). Rows present in the baseline
// but missing from the current report fail the gate. Improvements pass;
// commit a refreshed baseline to bank them (see the README's "Refreshing
// the benchmark baseline" section).
//
// Absolute comparisons are refused when the two reports' GOMAXPROCS or
// NumCPU differ (a core-count change moves every absolute number for
// hardware reasons); use -relative, which compares hardware-cancelling
// ratios, or -force to override.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	current := flag.String("current", "", "fresh report to check (required)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression (0.15 = 15%)")
	relative := flag.Bool("relative", false,
		"compare machine-independent ratios (codec speedups, fanout channel ratios) instead of absolute calls/s and ns/op; use when baseline and current ran on different hardware (CI)")
	force := flag.Bool("force", false,
		"compare absolute metrics even when the reports' GOMAXPROCS/NumCPU differ (normally refused: core-count changes move every absolute number for hardware reasons)")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := bench.ReadReport(*baseline)
	if err != nil {
		log.Fatalf("benchdiff: %v", err)
	}
	cur, err := bench.ReadReport(*current)
	if err != nil {
		log.Fatalf("benchdiff: %v", err)
	}

	if !*relative && !*force {
		if msg := bench.MetaMismatch(base.Meta, cur.Meta); msg != "" {
			log.Fatalf("benchdiff: refusing absolute comparison: %s\n"+
				"(absolute calls/s and ns/op are not comparable across core counts; use -relative, or -force to override)", msg)
		}
	}

	var problems []string
	var tracked int
	if *relative {
		problems = bench.CompareReportsRelative(base, cur, *tolerance)
		tracked = len(bench.RelativeMetrics(base))
	} else {
		problems = bench.CompareReports(base, cur, *tolerance)
		tracked = len(base.Fanout) + len(base.Codec) + len(base.OpenLoop)
	}
	mode := "absolute"
	if *relative {
		mode = "relative"
	}
	if len(problems) > 0 {
		fmt.Printf("benchdiff: %d %s regression(s) beyond %.0f%% against %s:\n", len(problems), mode, 100**tolerance, *baseline)
		for _, p := range problems {
			fmt.Println("  FAIL:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK — %d %s metrics within %.0f%% of %s\n", tracked, mode, 100**tolerance, *baseline)
}
