// Command benchdiff is the CI benchmark-regression gate: it compares a
// fresh parcbench -json report against the committed baseline and exits
// non-zero when a tracked metric regressed beyond the tolerance.
//
// Usage:
//
//	go run ./cmd/parcbench -exp fanout -exp codec -json > BENCH_current.json
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_current.json
//
// Tracked metrics: fanout calls/s (per channel and payload size, must not
// drop), codec ns/op (per path/op, must not rise) and codec allocs/op
// (per path/op, must never rise — allocation counts are deterministic, so
// a pooling regression has no noise excuse and gets no tolerance; the
// alloc gate applies in -relative mode too). Rows present in the baseline
// but missing from the current report fail the gate. Improvements pass;
// commit a refreshed baseline to bank them (see the README's "Refreshing
// the benchmark baseline" section).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	current := flag.String("current", "", "fresh report to check (required)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression (0.15 = 15%)")
	relative := flag.Bool("relative", false,
		"compare machine-independent ratios (codec speedups, fanout channel ratios) instead of absolute calls/s and ns/op; use when baseline and current ran on different hardware (CI)")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := bench.ReadReport(*baseline)
	if err != nil {
		log.Fatalf("benchdiff: %v", err)
	}
	cur, err := bench.ReadReport(*current)
	if err != nil {
		log.Fatalf("benchdiff: %v", err)
	}

	var problems []string
	var tracked int
	if *relative {
		problems = bench.CompareReportsRelative(base, cur, *tolerance)
		tracked = len(bench.RelativeMetrics(base))
	} else {
		problems = bench.CompareReports(base, cur, *tolerance)
		tracked = len(base.Fanout) + len(base.Codec)
	}
	mode := "absolute"
	if *relative {
		mode = "relative"
	}
	if len(problems) > 0 {
		fmt.Printf("benchdiff: %d %s regression(s) beyond %.0f%% against %s:\n", len(problems), mode, 100**tolerance, *baseline)
		for _, p := range problems {
			fmt.Println("  FAIL:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK — %d %s metrics within %.0f%% of %s\n", tracked, mode, 100**tolerance, *baseline)
}
