// Command pingpong is the paper's low-level test as a standalone tool: it
// exchanges messages of increasing size between two endpoints over a chosen
// stack and prints latency and bandwidth per size.
//
// Usage:
//
//	pingpong                 # all stacks, shaped 100 Mbit network
//	pingpong -stack mono     # one of mpi, rmi, mono, mono105, monohttp
//	pingpong -ideal          # no network shaping, no cost model
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/cost"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/remoting"
)

func main() {
	stackName := flag.String("stack", "all", "stack: all, mpi, rmi, mono, mono105, monohttp")
	ideal := flag.Bool("ideal", false, "disable network shaping and cost models")
	full := flag.Bool("full", false, "full 1 B - 1 MB sweep")
	flag.Parse()

	net := profile.Network()
	pick := func(c cost.Model) cost.Model { return c }
	if *ideal {
		net = netsim.Params{}
		pick = func(cost.Model) cost.Model { return cost.Model{} }
	}

	type maker struct {
		name  string
		build func() (bench.Stack, error)
	}
	makers := []maker{
		{"mpi", func() (bench.Stack, error) { return bench.NewMPIStack(net, pick(profile.MPICH())) }},
		{"rmi", func() (bench.Stack, error) { return bench.NewRMIStack(net, pick(profile.JavaRMI())) }},
		{"mono", func() (bench.Stack, error) {
			return bench.NewRemotingStack("Mono 1.1.7 (Tcp)", remoting.TCP, net, pick(profile.MonoTCP117()))
		}},
		{"mono105", func() (bench.Stack, error) {
			return bench.NewRemotingStack("Mono 1.0.5 (Tcp)", remoting.LegacyTCP, net, pick(profile.MonoTCP105()))
		}},
		{"monohttp", func() (bench.Stack, error) {
			return bench.NewRemotingStack("Mono 1.1.7 (Http)", remoting.HTTP, net, pick(profile.MonoHTTP()))
		}},
	}

	var stacks []bench.Stack
	for _, m := range makers {
		if *stackName != "all" && *stackName != m.name {
			continue
		}
		s, err := m.build()
		if err != nil {
			log.Fatal(err)
		}
		stacks = append(stacks, s)
	}
	if len(stacks) == 0 {
		log.Fatalf("pingpong: unknown stack %q", *stackName)
	}
	defer bench.CloseAll(stacks)

	rows, err := bench.Sweep(stacks, bench.MessageSizes(*full), *full)
	if err != nil {
		log.Fatal(err)
	}
	bench.PrintBandwidth(os.Stdout, "ping-pong bandwidth", rows)
	fmt.Println()
	lat, err := bench.MeasureLatency(stacks, 30)
	if err != nil {
		log.Fatal(err)
	}
	bench.PrintLatency(os.Stdout, "small-message round-trip latency", lat)
}
