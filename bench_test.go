// Package repro's root benchmarks regenerate every table and figure of the
// paper through testing.B, one benchmark per artefact:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports paper-facing metrics via b.ReportMetric (modelled
// microseconds, MB/s, modelled seconds) so `go test -bench` output reads
// like the evaluation section. cmd/parcbench prints the same experiments as
// full tables.
package repro

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/raytracer"
	"repro/internal/sieve"
)

// metric builds a testing.B metric unit (no whitespace allowed).
func metric(parts ...string) string {
	joined := strings.Join(parts, "_")
	joined = strings.NewReplacer(" ", "", "(", "", ")", "", "#", "s").Replace(joined)
	return joined
}

// BenchmarkFig8a_Bandwidth measures the three-stack ping-pong of Fig. 8a at
// a representative 64 KB message on the shaped testbed network.
func BenchmarkFig8a_Bandwidth(b *testing.B) {
	stacks, err := bench.Fig8aStacks()
	if err != nil {
		b.Fatal(err)
	}
	defer bench.CloseAll(stacks)
	rows, err := bench.Sweep(stacks, []int{65536}, false)
	if err != nil {
		b.Fatal(err)
	}
	for name, mbps := range rows[0].MBps {
		b.ReportMetric(mbps, metric(name, "MB/s"))
	}
	payload := make([]int32, 65536/4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := stacks[i%len(stacks)].RoundTrip(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8b_MonoChannels measures the Mono channel comparison of
// Fig. 8b at 64 KB.
func BenchmarkFig8b_MonoChannels(b *testing.B) {
	stacks, err := bench.Fig8bStacks()
	if err != nil {
		b.Fatal(err)
	}
	defer bench.CloseAll(stacks)
	rows, err := bench.Sweep(stacks, []int{65536}, false)
	if err != nil {
		b.Fatal(err)
	}
	for name, mbps := range rows[0].MBps {
		b.ReportMetric(mbps, metric(name, "MB/s"))
	}
	payload := make([]int32, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := stacks[0].RoundTrip(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLatency_E3 measures the small-message round-trip latency table
// (paper: MPI 100 µs, Mono 273 µs, Java RMI 520 µs).
func BenchmarkLatency_E3(b *testing.B) {
	stacks, err := bench.Fig8aStacks()
	if err != nil {
		b.Fatal(err)
	}
	defer bench.CloseAll(stacks)
	res, err := bench.MeasureLatency(stacks, 20)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range res {
		b.ReportMetric(float64(r.RTT.Microseconds()), metric(r.Name, "us"))
	}
	payload := []int32{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := stacks[i%len(stacks)].RoundTrip(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9_RayTracerFarm runs the farmed ray tracer at 4 processors
// for both systems and reports modelled testbed seconds.
func BenchmarkFig9_RayTracerFarm(b *testing.B) {
	cfg := bench.DefaultFig9Config(false)
	cfg.Processors = []int{4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Seconds["ParC#"], "ParCs_s")
		b.ReportMetric(rows[0].Seconds["Java RMI"], "JavaRMI_s")
	}
}

// BenchmarkSeqRatio_E5 reports the sequential VM ratios of the paper's
// prose (ray tracer 1.4/1.1, sieve ≈ 1.0).
func BenchmarkSeqRatio_E5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunSeqRatios(500_000)
		for _, r := range rows {
			b.ReportMetric(r.Ratio, metric(r.Workload, r.VM))
		}
	}
}

// BenchmarkParcOverhead_E6 measures the ParC# platform penalty over raw
// remoting ("not noticeable" per the paper).
func BenchmarkParcOverhead_E6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunOverhead(1024, 10, profile.Network())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverheadPct, "overhead_%")
	}
}

// BenchmarkAblationAggregation_A1 sweeps the SCOOPP method-call aggregation
// factor on the pipelined sieve.
func BenchmarkAblationAggregation_A1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAggregationSweep(150, []int{1, 16}, netsim.Ethernet100())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 2 && rows[1].Seconds > 0 {
			b.ReportMetric(rows[0].Seconds/rows[1].Seconds, "speedup_maxcalls16")
		}
	}
}

// BenchmarkAblationAgglomeration_A2 compares never/always/adaptive
// agglomeration on a fine-grain fan-out.
func BenchmarkAblationAgglomeration_A2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAgglomerationAblation(6, 15, netsim.Ethernet100())
		if err != nil {
			b.Fatal(err)
		}
		var never, always float64
		for _, r := range rows {
			switch r.Policy {
			case "never (all parallel)":
				never = r.Seconds
			case "always (all packed)":
				always = r.Seconds
			}
		}
		if always > 0 {
			b.ReportMetric(never/always, "agglomeration_speedup")
		}
	}
}

// BenchmarkAblationCodecs_A3 measures the three wire codecs on the
// reference RPC payload.
func BenchmarkAblationCodecs_A3(b *testing.B) {
	var rows []bench.CodecRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.RunCodecAblation(1024)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Bytes), metric(r.Codec, "bytes"))
	}
}

// BenchmarkAblationPool_A4 sweeps the per-node thread-pool cap on the ParC#
// farm (the paper's starvation mechanism).
func BenchmarkAblationPool_A4(b *testing.B) {
	cfg := bench.DefaultFig9Config(false)
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunPoolAblation(cfg, 4, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 2 && rows[1].Seconds > 0 {
			b.ReportMetric(rows[0].Seconds/rows[1].Seconds, "pool1_vs_pool8")
		}
	}
}

// BenchmarkRayTracerKernel measures the raw render kernel (per row).
func BenchmarkRayTracerKernel(b *testing.B) {
	scene := raytracer.JGFScene(8, 250, 250)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scene.RenderRows(i%scene.Height, i%scene.Height+1, 1)
	}
}

// BenchmarkSieveKernel measures the sequential sieve kernel used by E5.
func BenchmarkSieveKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := sieve.SequentialCount(100_000, 1); got != 9592 {
			b.Fatalf("π(100000) = %d", got)
		}
	}
}
